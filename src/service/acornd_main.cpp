// acornd — the online multi-WLAN controller daemon.
//
// Usage:
//   acornd --unix /run/acorn.sock [--tcp PORT] [--state-dir DIR]
//          [--epoch-s SECONDS] [--hysteresis FACTOR] [--wal-flush-us N]
//          [--wal-mode shared|per-shard] [--wal-segment-bytes N]
//          [--workers M] [--follow ENDPOINT] [--log]
//
// Runs until SIGINT/SIGTERM or a Shutdown request arrives on the wire;
// either way every shard drains its queue and writes a final snapshot
// before the process exits.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/daemon.hpp"

namespace {

acorn::service::Daemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--unix PATH] [--tcp PORT] [--state-dir DIR]\n"
               "          [--epoch-s SECONDS] [--hysteresis FACTOR]\n"
               "          [--wal-flush-us N] [--wal-mode shared|per-shard]\n"
               "          [--wal-segment-bytes N] [--follow ENDPOINT] "
               "[--log]\n"
               "\n"
               "At least one of --unix / --tcp is required.\n"
               "  --unix PATH        listen on a Unix domain socket\n"
               "  --tcp PORT         listen on 127.0.0.1:PORT (0 = ephemeral,\n"
               "                     chosen port is printed on startup)\n"
               "  --state-dir DIR    persist per-WLAN snapshots + event logs\n"
               "                     and recover them on startup\n"
               "  --epoch-s SECONDS  reconfiguration period (default 1.0;\n"
               "                     0 = only on force-reconfigure)\n"
               "  --hysteresis F     width-switch advantage factor "
               "(default 1.05)\n"
               "  --wal-flush-us N   WAL group-commit bound in microseconds:\n"
               "                     max time a record may sit unflushed "
               "under\n"
               "                     backlog (default 200; 0 = sync per "
               "event)\n"
               "  --wal-mode MODE    durability layout: 'shared' (default)\n"
               "                     coalesces every WLAN's records into\n"
               "                     shared seg_<n>.walseg files behind one\n"
               "                     fdatasync; 'per-shard' keeps a private\n"
               "                     wlan_<id>.wal per WLAN. Either mode\n"
               "                     recovers the other's files.\n"
               "  --wal-segment-bytes N  shared-mode segment rotation size\n"
               "                     (default 67108864)\n"
               "  --workers M        shard execution: M pooled workers "
               "shared\n"
               "                     by every WLAN (default: hardware "
               "threads;\n"
               "                     0 = one dedicated thread per WLAN)\n"
               "  --follow ENDPOINT  run as a warm standby replicating the\n"
               "                     leader at unix:/path or host:port\n"
               "  --log              per-epoch and periodic stats on stderr\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  acorn::service::DaemonConfig config;
  config.log = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      config.unix_path = value();
    } else if (arg == "--tcp") {
      config.tcp = true;
      config.tcp_port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--state-dir") {
      config.state_dir = value();
    } else if (arg == "--epoch-s") {
      config.epoch_s = std::atof(value());
    } else if (arg == "--hysteresis") {
      config.width_hysteresis = std::atof(value());
    } else if (arg == "--wal-flush-us") {
      config.wal_flush_us = static_cast<std::uint32_t>(std::atol(value()));
    } else if (arg == "--wal-mode") {
      const std::string mode = value();
      if (mode == "shared") {
        config.wal_mode = acorn::service::WalMode::kShared;
      } else if (mode == "per-shard") {
        config.wal_mode = acorn::service::WalMode::kPerShard;
      } else {
        std::fprintf(stderr, "%s: --wal-mode must be shared or per-shard\n",
                     argv[0]);
        return 2;
      }
    } else if (arg == "--wal-segment-bytes") {
      config.wal_segment_bytes =
          static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--workers") {
      config.workers = std::atoi(value());
    } else if (arg == "--follow") {
      config.follow = value();
    } else if (arg == "--log") {
      config.log = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }
  if (!config.tcp && config.unix_path.empty()) return usage(argv[0]);

  acorn::service::Daemon daemon(config);
  try {
    daemon.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acornd: startup failed: %s\n", e.what());
    return 1;
  }

  g_daemon = &daemon;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  if (config.tcp) {
    std::fprintf(stderr, "acornd: listening on 127.0.0.1:%d\n",
                 daemon.tcp_port());
  }
  if (!config.unix_path.empty()) {
    std::fprintf(stderr, "acornd: listening on %s\n",
                 config.unix_path.c_str());
  }

  daemon.wait();
  g_daemon = nullptr;
  return 0;
}
