#include "service/sync_coordinator.hpp"

#include <unistd.h>

#include <cstdio>
#include <iterator>
#include <memory>

#include "service/wire.hpp"

namespace acorn::service {

namespace {

/// Same policy as the per-shard WalWriter path: a sick disk gets a few
/// retries behind a backoff, then the fleet degrades to non-durable
/// operation instead of withholding every shard's replies forever.
constexpr std::uint32_t kMaxSyncFailures = 3;
constexpr auto kSyncRetryBackoff = std::chrono::milliseconds(10);

}  // namespace

SyncCoordinator::SyncCoordinator(Options options)
    : options_(std::move(options)) {}

SyncCoordinator::~SyncCoordinator() { stop(); }

void SyncCoordinator::seed(const SegmentLoadResult& scan) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const SegmentCoverage& seg : scan.segments) {
    closed_[seg.index] = seg.max_seq;
  }
  if (scan.next_index > next_index_) next_index_ = scan.next_index;
  // Recovered segments become retirable as soon as the shards'
  // start()-time checkpoints cover them.
  retire_pending_ = !closed_.empty();
}

void SyncCoordinator::start() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
  }
  thread_ = std::thread([this] { run(); });
}

void SyncCoordinator::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_ && !thread_.joinable()) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  writer_.close();
}

void SyncCoordinator::submit(CommitBatch batch) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(batch));
  }
  cv_.notify_all();
}

void SyncCoordinator::note_checkpoint(std::uint32_t wlan_id,
                                      std::uint64_t seq) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t& cp = checkpoints_[wlan_id];
    if (seq > cp) cp = seq;
    retire_pending_ = true;
  }
  cv_.notify_all();
}

void SyncCoordinator::remove_wlan(std::uint32_t wlan_id) {
  struct Signal {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
  };
  auto sig = std::make_shared<Signal>();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_ || !durable_.load(std::memory_order_relaxed)) {
      // No commit thread (or no disk) to write the tombstone through:
      // drop the bookkeeping inline. Without durability this leaves the
      // dead incarnation's records on disk — recovery then relies on
      // the missing snapshot (an unknown WLAN's records are fenced at
      // startup), the best available once the disk was given up on.
      open_cover_.erase(wlan_id);
      for (auto& [index, cover] : closed_) cover.erase(wlan_id);
      checkpoints_.erase(wlan_id);
      retire_pending_ = true;
      cv_.notify_all();
      return;
    }
    CommitBatch batch;
    batch.wlan_id = wlan_id;
    batch.tombstone = true;
    batch.on_durable = [sig] {
      {
        const std::lock_guard<std::mutex> lock(sig->m);
        sig->done = true;
      }
      sig->cv.notify_all();
    };
    queue_.push_back(std::move(batch));
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(sig->m);
  sig->cv.wait(lock, [&] { return sig->done; });
}

bool SyncCoordinator::has_records(std::uint32_t wlan_id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (open_cover_.count(wlan_id) != 0) return true;
  for (const auto& [index, cover] : closed_) {
    if (cover.count(wlan_id) != 0) return true;
  }
  return false;
}

bool SyncCoordinator::durable() const {
  return durable_.load(std::memory_order_relaxed);
}

std::size_t SyncCoordinator::segment_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_.size() + (open_segment_ ? 1 : 0);
}

void SyncCoordinator::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (!queue_.empty()) {
      std::vector<CommitBatch> batches(
          std::make_move_iterator(queue_.begin()),
          std::make_move_iterator(queue_.end()));
      queue_.clear();
      lock.unlock();
      commit(batches);
      lock.lock();
      continue;
    }
    if (retire_pending_) {
      retire_pending_ = false;
      lock.unlock();
      retire_covered();
      lock.lock();
      continue;
    }
    if (!running_) break;  // queue drained, nothing left to retire
    cv_.wait(lock);
  }
}

void SyncCoordinator::commit(std::vector<CommitBatch>& batches) {
  // Append every batch's fresh records to the shared segment in
  // submission order. The bookkeeping must move in the same order — a
  // tombstone erases exactly the coverage that precedes it, never a
  // later re-registration's — so the whole pass runs under mutex_
  // (memcpy-cheap; the expensive fdatasync below runs outside it).
  std::uint64_t appended = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (CommitBatch& batch : batches) {
      if (batch.tombstone) {
        if (durable_.load(std::memory_order_relaxed) &&
            ensure_writer_locked()) {
          writer_.append(batch.wlan_id, 0,
                         std::span<const std::uint8_t>{});
          ++appended;
        }
        open_cover_.erase(batch.wlan_id);
        for (auto& [index, cover] : closed_) cover.erase(batch.wlan_id);
        checkpoints_.erase(batch.wlan_id);
        retire_pending_ = true;
        continue;
      }
      for (const WalRecord& rec : batch.records) {
        if (rec.seq <= batch.write_from_seq) continue;
        if (!durable_.load(std::memory_order_relaxed) ||
            !ensure_writer_locked()) {
          break;
        }
        writer_.append(batch.wlan_id, rec.seq, rec.payload);
        std::uint64_t& top = open_cover_[batch.wlan_id];
        if (rec.seq > top) top = rec.seq;
        ++appended;
      }
    }
  }

  // One write + one fdatasync acknowledges every shard's batch.
  if (appended > 0 && durable_.load(std::memory_order_relaxed)) {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint32_t failures = 0;
    for (;;) {
      if (writer_.sync()) {
        if (options_.metrics != nullptr) {
          options_.metrics->wal_syncs.fetch_add(1,
                                                std::memory_order_relaxed);
          options_.metrics->wal_coalesced_events.fetch_add(
              appended, std::memory_order_relaxed);
          options_.metrics->wal_batch_events.record_us(appended);
          options_.metrics->wal_sync_latency.record(
              std::chrono::steady_clock::now() - t0);
        }
        break;
      }
      ++failures;
      std::fprintf(stderr, "acornd: shared WAL fdatasync failed\n");
      if (!writer_.is_open() || failures >= kMaxSyncFailures) {
        degrade("repeated fdatasync failures");
        break;
      }
      std::this_thread::sleep_for(kSyncRetryBackoff);
    }
  }

  maybe_rotate();

  // Release in submission order: durable records to each batch's
  // followers first (a follower must observe an event no later than the
  // client that caused it sees its reply), then the withheld replies,
  // then the shard's in-flight hook.
  for (CommitBatch& batch : batches) {
    if (batch.post && !batch.followers.empty() && !batch.records.empty()) {
      const auto now = std::chrono::steady_clock::now();
      for (const std::uint64_t conn : batch.followers) {
        for (const WalRecord& rec : batch.records) {
          batch.post(conn, now,
                     encode_frame(0, LogRecordFrame{batch.wlan_id, rec.seq,
                                                    rec.payload}));
        }
      }
    }
    for (CommitBatch::Reply& reply : batch.replies) {
      batch.post(reply.conn_id, reply.t0, std::move(reply.frame));
    }
    if (batch.on_durable) batch.on_durable();
  }
}

void SyncCoordinator::degrade(const char* why) {
  durable_.store(false, std::memory_order_relaxed);
  writer_.close();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    open_segment_ = false;
  }
  std::fprintf(stderr,
               "acornd: disabling shared WAL (%s); continuing without "
               "durability\n",
               why);
}

bool SyncCoordinator::ensure_writer_locked() {
  if (writer_.is_open()) return true;
  if (writer_.open(options_.dir, next_index_)) {
    ++next_index_;
    open_segment_ = true;
    return true;
  }
  // Cannot create the segment file: no durability is possible. Note the
  // direct store — degrade() would retake mutex_.
  durable_.store(false, std::memory_order_relaxed);
  open_segment_ = false;
  std::fprintf(stderr,
               "acornd: disabling shared WAL (cannot create segment in "
               "%s); continuing without durability\n",
               options_.dir.c_str());
  return false;
}

void SyncCoordinator::maybe_rotate() {
  if (!writer_.is_open() ||
      writer_.file_size() < options_.segment_bytes) {
    return;
  }
  const std::uint64_t index = writer_.index();
  writer_.close();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_[index] = std::move(open_cover_);
    open_cover_.clear();
    open_segment_ = false;
    retire_pending_ = true;
  }
  if (options_.log) {
    std::fprintf(stderr, "acornd: WAL segment %llu closed\n",
                 static_cast<unsigned long long>(index));
  }
}

void SyncCoordinator::retire_covered() {
  std::vector<std::uint64_t> retire;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Oldest first, stopping at the first still-needed segment: the
    // on-disk log stays a contiguous index suffix, so a tombstone can
    // never be deleted while records it fences survive in an older
    // segment.
    for (auto it = closed_.begin(); it != closed_.end();) {
      bool covered = true;
      for (const auto& [wlan_id, top] : it->second) {
        const auto cp = checkpoints_.find(wlan_id);
        if (cp == checkpoints_.end() || cp->second < top) {
          covered = false;
          break;
        }
      }
      if (!covered) break;
      retire.push_back(it->first);
      it = closed_.erase(it);
    }
  }
  if (retire.empty()) return;
  for (const std::uint64_t index : retire) {
    ::unlink(wal_segment_path(options_.dir, index).c_str());
  }
  fsync_dir(options_.dir);
  if (options_.log) {
    std::fprintf(stderr, "acornd: retired %zu WAL segment(s) through %llu\n",
                 retire.size(),
                 static_cast<unsigned long long>(retire.back()));
  }
}

}  // namespace acorn::service
