// Durable controller state for acornd.
//
// Each WLAN shard serializes its state to `<dir>/wlan_<id>.snap` at the
// end of every reconfiguration epoch: write to `<file>.tmp`, fsync,
// rename. The rename is atomic on POSIX filesystems, so a crash (up to
// and including SIGKILL mid-write) leaves either the previous complete
// snapshot or the new complete snapshot — never a torn file. A trailing
// FNV-1a checksum catches the remaining failure mode (a torn *tmp* file
// renamed by a buggy kernel, bit rot): decode_snapshot refuses payloads
// whose checksum does not match.
//
// The snapshot stores the WLAN's *inputs* (the deployment text with its
// shadowing seed, the applied loss overrides and load hints) plus the
// controller *decisions* (association, allocated and operating channel
// assignments, epoch and event counters). Recovery rebuilds the Wlan
// from the deployment text — bit-identical to the original build — and
// replays the overrides, so a recovered shard answers config queries
// exactly as the pre-crash one did.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/channels.hpp"
#include "net/interference.hpp"

namespace acorn::service {

inline constexpr std::uint32_t kSnapshotMagic = 0x4e524341;  // "ACRN"
// Version 2 adds the dirty-client set (clients whose link state changed
// since the last epoch), so recovery re-probes exactly the clients the
// pre-crash daemon would have. decode_snapshot still accepts version 1
// files (pre-upgrade state must not be dropped); lacking the dirty set,
// they recover with every client marked dirty — a one-off full re-probe
// at the first post-upgrade epoch.
inline constexpr std::uint16_t kSnapshotVersion = 2;

struct LossOverride {
  std::uint32_t ap = 0;
  std::uint32_t client = 0;
  double loss_db = 0.0;
};

struct LoadHint {
  std::uint32_t client = 0;
  double load = 1.0;
};

struct WlanSnapshot {
  std::uint32_t wlan_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t events_applied = 0;
  std::string deployment;
  net::Association association;
  std::vector<net::Channel> allocated;
  std::vector<net::Channel> operating;
  std::vector<LossOverride> loss_overrides;  // ascending (ap, client)
  std::vector<LoadHint> loads;               // ascending client
  std::vector<std::uint32_t> dirty_clients;  // ascending client
};

std::vector<std::uint8_t> encode_snapshot(const WlanSnapshot& snap);

/// Throws service::WireError on malformed bytes or checksum mismatch.
WlanSnapshot decode_snapshot(std::span<const std::uint8_t> bytes);

/// Write-temp + fsync + atomic-rename to `<dir>/wlan_<id>.snap`.
/// Returns false (leaving any previous snapshot intact) on I/O failure.
bool write_snapshot(const std::string& dir, const WlanSnapshot& snap);

/// Path helpers, shared by the writer and the recovery scan.
std::string snapshot_path(const std::string& dir, std::uint32_t wlan_id);

/// Remove a WLAN's snapshot (after an explicit RemoveWlan).
void remove_snapshot(const std::string& dir, std::uint32_t wlan_id);

/// Scan `dir` for `wlan_*.snap` files and decode them; unreadable or
/// corrupt files are skipped (the daemon logs and carries on — a corrupt
/// snapshot must not block recovery of the healthy WLANs).
std::vector<WlanSnapshot> load_snapshots(const std::string& dir);

}  // namespace acorn::service
