#include "service/eventlog.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "service/wire.hpp"

namespace acorn::service {

namespace {

constexpr std::size_t kHeaderBytes = 6;        // u32 magic + u16 version
constexpr std::size_t kRecordOverhead = 20;    // u32 len + u64 seq + u64 fnv
// Segment files: u32 magic + u16 version + u64 index.
constexpr std::size_t kSegHeaderBytes = 14;
// u32 len + u32 wlan_id + u64 seq + u64 fnv.
constexpr std::size_t kSegRecordOverhead = 24;

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

void put_header(ByteWriter& w) {
  w.u32(kWalMagic);
  w.u16(kWalVersion);
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::write(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(r);
  }
  return true;
}

/// Read a whole file into memory; returns false if it cannot be opened.
bool slurp(const std::string& path, std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);
  return true;
}

}  // namespace

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::string wal_path(const std::string& dir, std::uint32_t wlan_id) {
  return dir + "/wlan_" + std::to_string(wlan_id) + ".wal";
}

void remove_wal(const std::string& dir, std::uint32_t wlan_id) {
  ::unlink(wal_path(dir, wlan_id).c_str());
}

std::vector<std::uint8_t> encode_wal_record(
    std::uint64_t seq, std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(seq);
  w.bytes(payload);
  const std::uint64_t checksum = fnv1a(w.data());
  w.u64(checksum);
  return w.take();
}

WalLoadResult load_wal(const std::string& dir, std::uint32_t wlan_id) {
  WalLoadResult out;
  const std::string path = wal_path(dir, wlan_id);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;  // no log: empty, clean
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);
  if (bytes.empty()) return out;  // freshly truncated: empty, clean
  if (bytes.size() < kHeaderBytes) {
    out.clean = false;  // torn mid-header
    return out;
  }
  {
    ByteReader r(std::span<const std::uint8_t>(bytes.data(), kHeaderBytes));
    if (r.u32() != kWalMagic || r.u16() != kWalVersion) {
      out.clean = false;
      return out;
    }
  }
  std::size_t pos = kHeaderBytes;
  std::uint64_t prev_seq = 0;
  while (pos < bytes.size()) {
    const std::size_t left = bytes.size() - pos;
    if (left < kRecordOverhead) {
      out.clean = false;  // torn tail: partial record header/trailer
      break;
    }
    ByteReader hdr(std::span<const std::uint8_t>(bytes.data() + pos, 12));
    const std::uint32_t len = hdr.u32();
    const std::uint64_t seq = hdr.u64();
    if (len > kMaxFramePayload || left < kRecordOverhead + len) {
      out.clean = false;  // garbage length or torn payload
      break;
    }
    const std::span<const std::uint8_t> body(bytes.data() + pos, 12 + len);
    ByteReader trailer(
        std::span<const std::uint8_t>(bytes.data() + pos + 12 + len, 8));
    if (trailer.u64() != fnv1a(body)) {
      out.clean = false;  // bit rot or torn rewrite
      break;
    }
    if (!out.records.empty() && seq != prev_seq + 1) {
      out.clean = false;  // ordinal gap: refuse the rest of the log
      break;
    }
    WalRecord rec;
    rec.seq = seq;
    rec.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos + 12),
                       bytes.begin() +
                           static_cast<std::ptrdiff_t>(pos + 12 + len));
    prev_seq = seq;
    out.records.push_back(std::move(rec));
    pos += kRecordOverhead + len;
  }
  return out;
}

bool WalWriter::open(const std::string& dir, std::uint32_t wlan_id) {
  close();
  const std::string path = wal_path(dir, wlan_id);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return false;
  }
  // O_CREAT may have made a brand-new dir entry; without a directory
  // fsync a power cut could drop the *file* while its fdatasync'd
  // records were already acknowledged.
  if (size == 0 && !fsync_dir(dir)) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  file_size_ = static_cast<std::uint64_t>(size);
  buf_.clear();
  return true;
}

void WalWriter::append(std::uint64_t seq,
                       std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return;
  if (file_size_ == 0 && buf_.empty()) {
    ByteWriter w;
    put_header(w);
    buf_.insert(buf_.end(), w.data().begin(), w.data().end());
  }
  const std::vector<std::uint8_t> rec = encode_wal_record(seq, payload);
  buf_.insert(buf_.end(), rec.begin(), rec.end());
}

bool WalWriter::sync() {
  if (fd_ < 0) return false;
  if (!buf_.empty()) {
    if (!write_all(fd_, buf_.data(), buf_.size())) {
      // The failed write may have appended a *prefix* of the buffer — a
      // torn record that a later successful retry (which re-appends the
      // whole buffer) would leave sitting in front of live records,
      // making load_wal stop at the tear and lose everything after it.
      // Cut the file back to the last known-good boundary so a retry
      // starts clean; if even that fails the tail cannot be trusted, so
      // stop logging through this writer entirely.
      if (::ftruncate(fd_, static_cast<off_t>(file_size_)) != 0) close();
      return false;
    }
    file_size_ += buf_.size();
    buf_.clear();
  }
  // fdatasync: the record payload and the file-size extension reach the
  // journal; mtime/atime churn does not have to.
  return ::fdatasync(fd_) == 0;
}

bool WalWriter::reset() {
  buf_.clear();
  if (fd_ < 0) return false;
  if (file_size_ == 0) return true;
  if (::ftruncate(fd_, 0) != 0) return false;
  file_size_ = 0;
  return true;
}

void WalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  file_size_ = 0;
  buf_.clear();
}

// ---- Shared, segmented WAL ----------------------------------------------

std::string wal_segment_path(const std::string& dir, std::uint64_t index) {
  return dir + "/seg_" + std::to_string(index) + ".walseg";
}

std::vector<std::uint8_t> encode_segment_record(
    std::uint32_t wlan_id, std::uint64_t seq,
    std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(wlan_id);
  w.u64(seq);
  w.bytes(payload);
  const std::uint64_t checksum = fnv1a(w.data());
  w.u64(checksum);
  return w.take();
}

namespace {

/// Parse the valid record prefix of one segment file into `out`,
/// returning false on the first torn/corrupt record (the prefix is
/// kept). Unlike per-shard logs, seq gaps are not policed here: records
/// from many WLANs interleave, so contiguity is a per-WLAN property the
/// shard replay loop enforces.
bool scan_segment(const std::string& path, std::uint64_t index,
                  SegmentLoadResult& out) {
  std::vector<std::uint8_t> bytes;
  if (!slurp(path, bytes)) return false;
  SegmentCoverage cover;
  cover.index = index;
  if (bytes.size() < kSegHeaderBytes) {
    out.segments.push_back(std::move(cover));
    return bytes.empty();  // zero bytes: created but never synced — clean
  }
  {
    ByteReader r(
        std::span<const std::uint8_t>(bytes.data(), kSegHeaderBytes));
    if (r.u32() != kWalSegMagic || r.u16() != kWalSegVersion ||
        r.u64() != index) {
      out.segments.push_back(std::move(cover));
      return false;
    }
  }
  bool clean = true;
  std::size_t pos = kSegHeaderBytes;
  while (pos < bytes.size()) {
    const std::size_t left = bytes.size() - pos;
    if (left < kSegRecordOverhead) {
      clean = false;  // torn tail
      break;
    }
    ByteReader hdr(std::span<const std::uint8_t>(bytes.data() + pos, 16));
    const std::uint32_t len = hdr.u32();
    const std::uint32_t wlan_id = hdr.u32();
    const std::uint64_t seq = hdr.u64();
    if (len > kMaxFramePayload || left < kSegRecordOverhead + len) {
      clean = false;  // garbage length or torn payload
      break;
    }
    const std::span<const std::uint8_t> body(bytes.data() + pos, 16 + len);
    ByteReader trailer(
        std::span<const std::uint8_t>(bytes.data() + pos + 16 + len, 8));
    if (trailer.u64() != fnv1a(body)) {
      clean = false;  // bit rot or torn rewrite
      break;
    }
    if (seq == 0) {
      // Removal tombstone (RemoveWlan, or a re-registration fencing off
      // the previous incarnation): every record for this WLAN seen so
      // far — in this segment and all earlier ones — belongs to a dead
      // incarnation and must not replay.
      out.records.erase(wlan_id);
      cover.max_seq.erase(wlan_id);
      for (SegmentCoverage& prev : out.segments) {
        prev.max_seq.erase(wlan_id);
      }
      pos += kSegRecordOverhead + len;
      continue;
    }
    WalRecord rec;
    rec.seq = seq;
    rec.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos + 16),
                       bytes.begin() +
                           static_cast<std::ptrdiff_t>(pos + 16 + len));
    out.records[wlan_id].push_back(std::move(rec));
    std::uint64_t& top = cover.max_seq[wlan_id];
    top = std::max(top, seq);
    pos += kSegRecordOverhead + len;
  }
  out.segments.push_back(std::move(cover));
  return clean;
}

}  // namespace

SegmentLoadResult load_wal_segments(const std::string& dir) {
  SegmentLoadResult out;
  std::vector<std::uint64_t> indices;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* ent = ::readdir(d)) {
      const std::string name = ent->d_name;
      if (name.size() <= 11 || name.rfind("seg_", 0) != 0 ||
          name.substr(name.size() - 7) != ".walseg") {
        continue;
      }
      const std::string digits = name.substr(4, name.size() - 11);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      indices.push_back(std::strtoull(digits.c_str(), nullptr, 10));
    }
    ::closedir(d);
  }
  std::sort(indices.begin(), indices.end());
  for (std::uint64_t index : indices) {
    if (!scan_segment(wal_segment_path(dir, index), index, out)) {
      out.clean = false;  // keep scanning: later segments may be intact
    }
    out.next_index = index + 1;
  }
  return out;
}

bool WalSegmentWriter::open(const std::string& dir, std::uint64_t index) {
  close();
  const std::string path = wal_segment_path(dir, index);
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC,
                        0644);
  if (fd < 0) return false;
  if (!fsync_dir(dir)) {
    ::close(fd);
    ::unlink(path.c_str());
    return false;
  }
  fd_ = fd;
  index_ = index;
  file_size_ = 0;
  buf_.clear();
  return true;
}

void WalSegmentWriter::append(std::uint32_t wlan_id, std::uint64_t seq,
                              std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return;
  if (file_size_ == 0 && buf_.empty()) {
    ByteWriter w;
    w.u32(kWalSegMagic);
    w.u16(kWalSegVersion);
    w.u64(index_);
    buf_.insert(buf_.end(), w.data().begin(), w.data().end());
  }
  const std::vector<std::uint8_t> rec =
      encode_segment_record(wlan_id, seq, payload);
  buf_.insert(buf_.end(), rec.begin(), rec.end());
}

bool WalSegmentWriter::sync() {
  if (fd_ < 0) return false;
  if (!buf_.empty()) {
    if (!write_all(fd_, buf_.data(), buf_.size())) {
      // Same torn-tail discipline as WalWriter::sync(): cut back to the
      // durable boundary so a retry re-appends the whole buffer cleanly,
      // and close the writer if even the truncate fails.
      if (::ftruncate(fd_, static_cast<off_t>(file_size_)) != 0) close();
      return false;
    }
    file_size_ += buf_.size();
    buf_.clear();
  }
  return ::fdatasync(fd_) == 0;
}

void WalSegmentWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  index_ = 0;
  file_size_ = 0;
  buf_.clear();
}

}  // namespace acorn::service
