#include "service/eventlog.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "service/wire.hpp"

namespace acorn::service {

namespace {

constexpr std::size_t kHeaderBytes = 6;        // u32 magic + u16 version
constexpr std::size_t kRecordOverhead = 20;    // u32 len + u64 seq + u64 fnv

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

void put_header(ByteWriter& w) {
  w.u32(kWalMagic);
  w.u16(kWalVersion);
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::write(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

std::string wal_path(const std::string& dir, std::uint32_t wlan_id) {
  return dir + "/wlan_" + std::to_string(wlan_id) + ".wal";
}

void remove_wal(const std::string& dir, std::uint32_t wlan_id) {
  ::unlink(wal_path(dir, wlan_id).c_str());
}

std::vector<std::uint8_t> encode_wal_record(
    std::uint64_t seq, std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(seq);
  w.bytes(payload);
  const std::uint64_t checksum = fnv1a(w.data());
  w.u64(checksum);
  return w.take();
}

WalLoadResult load_wal(const std::string& dir, std::uint32_t wlan_id) {
  WalLoadResult out;
  const std::string path = wal_path(dir, wlan_id);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;  // no log: empty, clean
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);
  if (bytes.empty()) return out;  // freshly truncated: empty, clean
  if (bytes.size() < kHeaderBytes) {
    out.clean = false;  // torn mid-header
    return out;
  }
  {
    ByteReader r(std::span<const std::uint8_t>(bytes.data(), kHeaderBytes));
    if (r.u32() != kWalMagic || r.u16() != kWalVersion) {
      out.clean = false;
      return out;
    }
  }
  std::size_t pos = kHeaderBytes;
  std::uint64_t prev_seq = 0;
  while (pos < bytes.size()) {
    const std::size_t left = bytes.size() - pos;
    if (left < kRecordOverhead) {
      out.clean = false;  // torn tail: partial record header/trailer
      break;
    }
    ByteReader hdr(std::span<const std::uint8_t>(bytes.data() + pos, 12));
    const std::uint32_t len = hdr.u32();
    const std::uint64_t seq = hdr.u64();
    if (len > kMaxFramePayload || left < kRecordOverhead + len) {
      out.clean = false;  // garbage length or torn payload
      break;
    }
    const std::span<const std::uint8_t> body(bytes.data() + pos, 12 + len);
    ByteReader trailer(
        std::span<const std::uint8_t>(bytes.data() + pos + 12 + len, 8));
    if (trailer.u64() != fnv1a(body)) {
      out.clean = false;  // bit rot or torn rewrite
      break;
    }
    if (!out.records.empty() && seq != prev_seq + 1) {
      out.clean = false;  // ordinal gap: refuse the rest of the log
      break;
    }
    WalRecord rec;
    rec.seq = seq;
    rec.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos + 12),
                       bytes.begin() +
                           static_cast<std::ptrdiff_t>(pos + 12 + len));
    prev_seq = seq;
    out.records.push_back(std::move(rec));
    pos += kRecordOverhead + len;
  }
  return out;
}

bool WalWriter::open(const std::string& dir, std::uint32_t wlan_id) {
  close();
  const std::string path = wal_path(dir, wlan_id);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  file_size_ = static_cast<std::uint64_t>(size);
  buf_.clear();
  return true;
}

void WalWriter::append(std::uint64_t seq,
                       std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return;
  if (file_size_ == 0 && buf_.empty()) {
    ByteWriter w;
    put_header(w);
    buf_.insert(buf_.end(), w.data().begin(), w.data().end());
  }
  const std::vector<std::uint8_t> rec = encode_wal_record(seq, payload);
  buf_.insert(buf_.end(), rec.begin(), rec.end());
}

bool WalWriter::sync() {
  if (fd_ < 0) return false;
  if (!buf_.empty()) {
    if (!write_all(fd_, buf_.data(), buf_.size())) {
      // The failed write may have appended a *prefix* of the buffer — a
      // torn record that a later successful retry (which re-appends the
      // whole buffer) would leave sitting in front of live records,
      // making load_wal stop at the tear and lose everything after it.
      // Cut the file back to the last known-good boundary so a retry
      // starts clean; if even that fails the tail cannot be trusted, so
      // stop logging through this writer entirely.
      if (::ftruncate(fd_, static_cast<off_t>(file_size_)) != 0) close();
      return false;
    }
    file_size_ += buf_.size();
    buf_.clear();
  }
  // fdatasync: the record payload and the file-size extension reach the
  // journal; mtime/atime churn does not have to.
  return ::fdatasync(fd_) == 0;
}

bool WalWriter::reset() {
  buf_.clear();
  if (fd_ < 0) return false;
  if (file_size_ == 0) return true;
  if (::ftruncate(fd_, 0) != 0) return false;
  file_size_ = 0;
  return true;
}

void WalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  file_size_ = 0;
  buf_.clear();
}

}  // namespace acorn::service
