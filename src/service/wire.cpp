#include "service/wire.hpp"

#include <algorithm>

namespace acorn::service {

namespace {

template <typename T>
constexpr MsgType type_tag();
template <>
constexpr MsgType type_tag<RegisterWlan>() { return MsgType::kRegisterWlan; }
template <>
constexpr MsgType type_tag<RemoveWlan>() { return MsgType::kRemoveWlan; }
template <>
constexpr MsgType type_tag<ClientJoin>() { return MsgType::kClientJoin; }
template <>
constexpr MsgType type_tag<ClientLeave>() { return MsgType::kClientLeave; }
template <>
constexpr MsgType type_tag<SnrUpdate>() { return MsgType::kSnrUpdate; }
template <>
constexpr MsgType type_tag<LoadUpdate>() { return MsgType::kLoadUpdate; }
template <>
constexpr MsgType type_tag<ForceReconfigure>() {
  return MsgType::kForceReconfigure;
}
template <>
constexpr MsgType type_tag<QueryConfig>() { return MsgType::kQueryConfig; }
template <>
constexpr MsgType type_tag<QueryStats>() { return MsgType::kQueryStats; }
template <>
constexpr MsgType type_tag<Shutdown>() { return MsgType::kShutdown; }
template <>
constexpr MsgType type_tag<FollowLog>() { return MsgType::kFollowLog; }
template <>
constexpr MsgType type_tag<OkReply>() { return MsgType::kOkReply; }
template <>
constexpr MsgType type_tag<ErrorReply>() { return MsgType::kErrorReply; }
template <>
constexpr MsgType type_tag<ConfigReply>() { return MsgType::kConfigReply; }
template <>
constexpr MsgType type_tag<StatsReply>() { return MsgType::kStatsReply; }
template <>
constexpr MsgType type_tag<SnapshotFrame>() { return MsgType::kSnapshotFrame; }
template <>
constexpr MsgType type_tag<LogRecordFrame>() {
  return MsgType::kLogRecordFrame;
}

void encode_body(ByteWriter& w, const RegisterWlan& m) {
  w.u32(m.wlan_id);
  w.str(m.deployment);
}
void encode_body(ByteWriter& w, const RemoveWlan& m) { w.u32(m.wlan_id); }
void encode_body(ByteWriter& w, const ClientJoin& m) {
  w.u32(m.wlan_id);
  w.u32(m.client);
}
void encode_body(ByteWriter& w, const ClientLeave& m) {
  w.u32(m.wlan_id);
  w.u32(m.client);
}
void encode_body(ByteWriter& w, const SnrUpdate& m) {
  w.u32(m.wlan_id);
  w.u32(m.ap);
  w.u32(m.client);
  w.f64(m.loss_db);
}
void encode_body(ByteWriter& w, const LoadUpdate& m) {
  w.u32(m.wlan_id);
  w.u32(m.client);
  w.f64(m.load);
}
void encode_body(ByteWriter& w, const ForceReconfigure& m) {
  w.u32(m.wlan_id);
}
void encode_body(ByteWriter& w, const QueryConfig& m) { w.u32(m.wlan_id); }
void encode_body(ByteWriter&, const QueryStats&) {}
void encode_body(ByteWriter&, const Shutdown&) {}
void encode_body(ByteWriter&, const FollowLog&) {}
void encode_body(ByteWriter& w, const SnapshotFrame& m) { w.blob(m.snapshot); }
void encode_body(ByteWriter& w, const LogRecordFrame& m) {
  w.u32(m.wlan_id);
  w.u64(m.record_seq);
  w.blob(m.payload);
}
void encode_body(ByteWriter& w, const OkReply& m) { w.i32(m.value); }
void encode_body(ByteWriter& w, const ErrorReply& m) {
  w.u16(m.code);
  w.str(m.text);
}
void encode_body(ByteWriter& w, const ConfigReply& m) {
  w.u32(m.wlan_id);
  w.u64(m.epoch);
  w.u64(m.events_applied);
  w.f64(m.total_goodput_bps);
  w.u32(static_cast<std::uint32_t>(m.association.size()));
  for (int ap : m.association) w.i32(ap);
  w.u32(static_cast<std::uint32_t>(m.allocated.size()));
  for (const net::Channel& c : m.allocated) w.channel(c);
  w.u32(static_cast<std::uint32_t>(m.operating.size()));
  for (const net::Channel& c : m.operating) w.channel(c);
}
void encode_body(ByteWriter& w, const StatsReply& m) {
  w.u32(m.num_wlans);
  w.u64(m.frames_rx);
  w.u64(m.events_total);
  w.u64(m.protocol_errors);
  w.u64(m.epochs_total);
  w.u64(m.snapshots_written);
  w.u64(m.wal_records);
  w.u64(m.wal_flushes);
  w.u64(m.channel_switches);
  w.u64(m.width_switches);
  w.u64(m.assoc_changes);
  w.u64(m.alloc_evaluations);
  w.u64(m.oracle_cell_evals);
  w.u64(m.oracle_cell_hits);
  w.u64(m.oracle_share_evals);
  w.u64(m.oracle_share_hits);
  w.f64(m.last_epoch_ms);
  w.u32(static_cast<std::uint32_t>(m.latency_us_log2.size()));
  for (std::uint64_t b : m.latency_us_log2) w.u64(b);
  w.u64(m.wal_syncs);
  w.u64(m.wal_coalesced_events);
  w.u32(static_cast<std::uint32_t>(m.wal_sync_us_log2.size()));
  for (std::uint64_t b : m.wal_sync_us_log2) w.u64(b);
  w.u32(static_cast<std::uint32_t>(m.wal_batch_log2.size()));
  for (std::uint64_t b : m.wal_batch_log2) w.u64(b);
}

/// Vector length guard: a hostile length prefix must not trigger a huge
/// allocation before the (bounds-checked) element reads fail.
std::uint32_t checked_count(ByteReader& r, std::size_t element_bytes) {
  const std::uint32_t n = r.u32();
  if (element_bytes * n > r.remaining()) {
    throw WireError("vector count exceeds frame body");
  }
  return n;
}

RegisterWlan decode_register(ByteReader& r) {
  RegisterWlan m;
  m.wlan_id = r.u32();
  m.deployment = r.str();
  return m;
}
ConfigReply decode_config(ByteReader& r) {
  ConfigReply m;
  m.wlan_id = r.u32();
  m.epoch = r.u64();
  m.events_applied = r.u64();
  m.total_goodput_bps = r.f64();
  const std::uint32_t n_assoc = checked_count(r, 4);
  m.association.reserve(n_assoc);
  for (std::uint32_t i = 0; i < n_assoc; ++i) m.association.push_back(r.i32());
  const std::uint32_t n_alloc = checked_count(r, 5);
  m.allocated.reserve(n_alloc);
  for (std::uint32_t i = 0; i < n_alloc; ++i) m.allocated.push_back(r.channel());
  const std::uint32_t n_oper = checked_count(r, 5);
  m.operating.reserve(n_oper);
  for (std::uint32_t i = 0; i < n_oper; ++i) m.operating.push_back(r.channel());
  return m;
}
StatsReply decode_stats(ByteReader& r) {
  StatsReply m;
  m.num_wlans = r.u32();
  m.frames_rx = r.u64();
  m.events_total = r.u64();
  m.protocol_errors = r.u64();
  m.epochs_total = r.u64();
  m.snapshots_written = r.u64();
  m.wal_records = r.u64();
  m.wal_flushes = r.u64();
  m.channel_switches = r.u64();
  m.width_switches = r.u64();
  m.assoc_changes = r.u64();
  m.alloc_evaluations = r.u64();
  m.oracle_cell_evals = r.u64();
  m.oracle_cell_hits = r.u64();
  m.oracle_share_evals = r.u64();
  m.oracle_share_hits = r.u64();
  m.last_epoch_ms = r.f64();
  const std::uint32_t n = checked_count(r, 8);
  m.latency_us_log2.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.latency_us_log2.push_back(r.u64());
  m.wal_syncs = r.u64();
  m.wal_coalesced_events = r.u64();
  const std::uint32_t n_sync = checked_count(r, 8);
  m.wal_sync_us_log2.reserve(n_sync);
  for (std::uint32_t i = 0; i < n_sync; ++i) {
    m.wal_sync_us_log2.push_back(r.u64());
  }
  const std::uint32_t n_batch = checked_count(r, 8);
  m.wal_batch_log2.reserve(n_batch);
  for (std::uint32_t i = 0; i < n_batch; ++i) {
    m.wal_batch_log2.push_back(r.u64());
  }
  return m;
}

Message decode_body(MsgType type, ByteReader& r) {
  switch (type) {
    case MsgType::kRegisterWlan:
      return decode_register(r);
    case MsgType::kRemoveWlan:
      return RemoveWlan{r.u32()};
    case MsgType::kClientJoin: {
      ClientJoin m;
      m.wlan_id = r.u32();
      m.client = r.u32();
      return m;
    }
    case MsgType::kClientLeave: {
      ClientLeave m;
      m.wlan_id = r.u32();
      m.client = r.u32();
      return m;
    }
    case MsgType::kSnrUpdate: {
      SnrUpdate m;
      m.wlan_id = r.u32();
      m.ap = r.u32();
      m.client = r.u32();
      m.loss_db = r.f64();
      return m;
    }
    case MsgType::kLoadUpdate: {
      LoadUpdate m;
      m.wlan_id = r.u32();
      m.client = r.u32();
      m.load = r.f64();
      return m;
    }
    case MsgType::kForceReconfigure:
      return ForceReconfigure{r.u32()};
    case MsgType::kQueryConfig:
      return QueryConfig{r.u32()};
    case MsgType::kQueryStats:
      return QueryStats{};
    case MsgType::kShutdown:
      return Shutdown{};
    case MsgType::kFollowLog:
      return FollowLog{};
    case MsgType::kOkReply:
      return OkReply{r.i32()};
    case MsgType::kErrorReply: {
      ErrorReply m;
      m.code = r.u16();
      m.text = r.str();
      return m;
    }
    case MsgType::kConfigReply:
      return decode_config(r);
    case MsgType::kStatsReply:
      return decode_stats(r);
    case MsgType::kSnapshotFrame: {
      SnapshotFrame m;
      m.snapshot = r.blob();
      return m;
    }
    case MsgType::kLogRecordFrame: {
      LogRecordFrame m;
      m.wlan_id = r.u32();
      m.record_seq = r.u64();
      m.payload = r.blob();
      return m;
    }
  }
  throw WireError("unknown message type " +
                  std::to_string(static_cast<int>(type)));
}

}  // namespace

MsgType type_of(const Message& msg) {
  return std::visit(
      [](const auto& m) { return type_tag<std::decay_t<decltype(m)>>(); },
      msg);
}

void ByteWriter::channel(const net::Channel& c) {
  u8(c.is_bonded() ? 1 : 0);
  i32(c.primary());
}

net::Channel ByteReader::channel() {
  const std::uint8_t bonded = u8();
  const std::int32_t primary = i32();
  if (bonded > 1 || primary < 0) throw WireError("malformed channel");
  if (bonded != 0) {
    if (primary % 2 != 0) throw WireError("bonded channel with odd primary");
    return net::Channel::bonded(primary / 2);
  }
  return net::Channel::basic(primary);
}

std::vector<std::uint8_t> encode_payload(std::uint32_t seq,
                                         const Message& msg) {
  ByteWriter payload;
  payload.u16(kWireVersion);
  payload.u16(static_cast<std::uint16_t>(type_of(msg)));
  payload.u32(seq);
  std::visit([&payload](const auto& m) { encode_body(payload, m); }, msg);
  return payload.take();
}

std::vector<std::uint8_t> encode_frame(std::uint32_t seq, const Message& msg) {
  const std::vector<std::uint8_t> payload = encode_payload(seq, msg);
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.bytes(payload);
  return frame.take();
}

Frame decode_payload(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint16_t version = r.u16();
  if (version != kWireVersion) {
    throw WireError("unsupported wire version " + std::to_string(version));
  }
  const std::uint16_t raw_type = r.u16();
  Frame frame;
  frame.seq = r.u32();
  frame.msg = decode_body(static_cast<MsgType>(raw_type), r);
  r.expect_end();
  return frame;
}

void FrameBuffer::append(const std::uint8_t* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameBuffer::next() {
  if (buffered() < 4) return std::nullopt;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
  if (len > kMaxFramePayload) throw WireError("frame payload too large");
  if (buffered() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  const std::span<const std::uint8_t> payload(buf_.data() + pos_ + 4, len);
  Frame frame = decode_payload(payload);
  pos_ += 4 + len;
  return frame;
}

}  // namespace acorn::service
