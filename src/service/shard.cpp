#include "service/shard.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/width_switch.hpp"

namespace acorn::service {

namespace {

sim::DeploymentSpec parse_spec(const std::string& text) {
  return sim::parse_deployment(text);
}

core::AcornConfig controller_config(const sim::DeploymentSpec& spec) {
  core::AcornConfig cfg;
  cfg.plan = net::ChannelPlan(spec.num_channels);
  return cfg;
}

}  // namespace

WlanShard::WlanShard(ShardOptions options, WlanSnapshot state,
                     CompletionFn post)
    : options_(std::move(options)),
      wlan_id_(state.wlan_id),
      deployment_text_(state.deployment),
      spec_(parse_spec(state.deployment)),
      wlan_(spec_.build()),
      controller_(controller_config(spec_)),
      post_(std::move(post)) {
  const int n_aps = wlan_.topology().num_aps();
  const int n_clients = wlan_.topology().num_clients();
  if (n_aps == 0) throw std::invalid_argument("deployment has no APs");

  if (state.association.empty()) {
    assoc_.assign(static_cast<std::size_t>(n_clients), net::kUnassociated);
  } else {
    if (static_cast<int>(state.association.size()) != n_clients) {
      throw std::invalid_argument("snapshot association size mismatch");
    }
    assoc_ = std::move(state.association);
  }
  if (state.allocated.empty()) {
    // Fresh WLAN: the deterministic equivalent of "whatever the APs
    // booted with" — a random assignment seeded from the deployment.
    util::Rng rng(spec_.seed ^ (0x5eedull * (wlan_id_ + 1)));
    allocated_ =
        controller_.allocation_module().random_assignment(n_aps, rng);
  } else {
    if (static_cast<int>(state.allocated.size()) != n_aps) {
      throw std::invalid_argument("snapshot assignment size mismatch");
    }
    allocated_ = std::move(state.allocated);
  }
  operating_ = state.operating.empty() ? allocated_
                                       : std::move(state.operating);
  if (operating_.size() != allocated_.size()) {
    throw std::invalid_argument("snapshot operating size mismatch");
  }
  for (const LossOverride& o : state.loss_overrides) {
    if (o.ap >= static_cast<std::uint32_t>(n_aps) ||
        o.client >= static_cast<std::uint32_t>(n_clients) ||
        !std::isfinite(o.loss_db)) {
      throw std::invalid_argument("snapshot loss override out of range");
    }
    wlan_.budget().set_ap_client_loss_db(static_cast<int>(o.ap),
                                         static_cast<int>(o.client),
                                         o.loss_db);
    loss_overrides_[{o.ap, o.client}] = o.loss_db;
  }
  for (const LoadHint& l : state.loads) {
    if (!std::isfinite(l.load)) {
      throw std::invalid_argument("snapshot load hint not finite");
    }
    loads_[l.client] = l.load;
  }
  epoch_ = state.epoch;
  events_applied_ = state.events_applied;
}

WlanShard::~WlanShard() { stop(); }

void WlanShard::start() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (running_) return;
    running_ = true;
  }
  next_epoch_ = options_.epoch_s > 0.0
                    ? std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(options_.epoch_s))
                    : std::chrono::steady_clock::time_point::max();
  thread_ = std::thread([this] { run(); });
}

void WlanShard::stop() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!running_ && !thread_.joinable()) return;
    running_ = false;
  }
  queue_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  write_state_snapshot();
}

void WlanShard::submit(Job job) {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    jobs_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
}

void WlanShard::run() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (true) {
    if (!jobs_.empty()) {
      Job job = std::move(jobs_.front());
      jobs_.pop_front();
      lock.unlock();
      process(job);
      lock.lock();
      continue;
    }
    if (!running_) break;
    if (queue_cv_.wait_until(lock, next_epoch_) == std::cv_status::timeout &&
        running_ && jobs_.empty()) {
      lock.unlock();
      run_epoch();
      lock.lock();
    }
  }
}

void WlanShard::process(Job& job) {
  Message reply = apply(job.msg);
  post_(job.conn_id, job.t0, encode_frame(job.seq, std::move(reply)));
}

Message WlanShard::apply(const Message& msg) {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  Message reply = apply_locked(msg);
  publish_counters_locked();
  return reply;
}

Message WlanShard::apply_locked(const Message& msg) {
  const int n_aps = wlan_.topology().num_aps();
  const int n_clients = wlan_.topology().num_clients();

  if (const auto* join = std::get_if<ClientJoin>(&msg)) {
    if (join->client >= static_cast<std::uint32_t>(n_clients)) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "client id out of range"};
    }
    const int c = static_cast<int>(join->client);
    const int before = assoc_[static_cast<std::size_t>(c)];
    // Re-running Algorithm 1 for an already-associated client is a
    // re-association probe: detach first so the utility terms see the
    // network without it (exactly the paper's trial association).
    assoc_[static_cast<std::size_t>(c)] = net::kUnassociated;
    const std::optional<int> ap =
        controller_.associate_client(wlan_, assoc_, operating_, c);
    ++events_applied_;
    ++counters_.events;
    if (assoc_[static_cast<std::size_t>(c)] != before) {
      ++counters_.assoc_changes;
      invalidate_oracle();
    }
    return OkReply{ap.value_or(net::kUnassociated)};
  }
  if (const auto* leave = std::get_if<ClientLeave>(&msg)) {
    if (leave->client >= static_cast<std::uint32_t>(n_clients)) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "client id out of range"};
    }
    const int c = static_cast<int>(leave->client);
    if (assoc_[static_cast<std::size_t>(c)] != net::kUnassociated) {
      assoc_[static_cast<std::size_t>(c)] = net::kUnassociated;
      ++counters_.assoc_changes;
      invalidate_oracle();
    }
    ++events_applied_;
    ++counters_.events;
    return OkReply{net::kUnassociated};
  }
  if (const auto* snr = std::get_if<SnrUpdate>(&msg)) {
    if (snr->ap >= static_cast<std::uint32_t>(n_aps) ||
        snr->client >= static_cast<std::uint32_t>(n_clients)) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "ap/client id out of range"};
    }
    // A NaN/Inf loss would poison every later SNR/rate computation and
    // survive restart through the snapshot; a negative loss is a gain.
    if (!std::isfinite(snr->loss_db) || snr->loss_db < 0.0) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "loss_db must be finite and non-negative"};
    }
    wlan_.budget().set_ap_client_loss_db(static_cast<int>(snr->ap),
                                         static_cast<int>(snr->client),
                                         snr->loss_db);
    loss_overrides_[{snr->ap, snr->client}] = snr->loss_db;
    dirty_clients_.insert(static_cast<int>(snr->client));
    invalidate_oracle();
    ++events_applied_;
    ++counters_.events;
    return OkReply{};
  }
  if (const auto* load = std::get_if<LoadUpdate>(&msg)) {
    if (load->client >= static_cast<std::uint32_t>(n_clients)) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "client id out of range"};
    }
    if (!std::isfinite(load->load) || load->load < 0.0) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "load must be finite and non-negative"};
    }
    loads_[load->client] = load->load;
    ++events_applied_;
    ++counters_.events;
    return OkReply{};
  }
  if (std::get_if<ForceReconfigure>(&msg) != nullptr) {
    ++events_applied_;
    ++counters_.events;
    const std::uint64_t before = counters_.channel_switches;
    run_epoch_locked();
    return OkReply{
        static_cast<std::int32_t>(counters_.channel_switches - before)};
  }
  if (std::get_if<QueryConfig>(&msg) != nullptr) {
    ++counters_.events;
    ensure_oracle();
    ConfigReply reply;
    reply.wlan_id = wlan_id_;
    reply.epoch = epoch_;
    reply.events_applied = events_applied_;
    reply.total_goodput_bps =
        oracle_->snapshot().evaluate(operating_).total_goodput_bps;
    reply.association = assoc_;
    reply.allocated = allocated_;
    reply.operating = operating_;
    return reply;
  }
  return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                    "message not routable to a shard"};
}

void WlanShard::run_epoch() {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  run_epoch_locked();
  publish_counters_locked();
}

void WlanShard::run_epoch_locked() {
  const auto t0 = std::chrono::steady_clock::now();

  // Incremental re-association: re-probe (detach + Algorithm 1 trial
  // association) only the clients whose links changed since the last
  // epoch. A partial event stream costs a handful of probes here, never
  // a full re-association sweep.
  bool assoc_changed = false;
  for (const int c : dirty_clients_) {
    const std::size_t ci = static_cast<std::size_t>(c);
    const int before = assoc_[ci];
    if (before == net::kUnassociated) continue;  // joins probe themselves
    assoc_[ci] = net::kUnassociated;
    controller_.associate_client(wlan_, assoc_, operating_, c);
    if (assoc_[ci] != before) {
      ++counters_.assoc_changes;
      assoc_changed = true;
    }
  }
  dirty_clients_.clear();
  if (assoc_changed) invalidate_oracle();
  ensure_oracle();

  // Algorithm 2 with the incremental oracle; its epsilon (stop below 5%
  // aggregate improvement) is the channel-level hysteresis.
  const core::AllocationResult result =
      controller_.allocation_module().allocate(
          wlan_, assoc_, allocated_,
          [this](const net::Association&, const net::ChannelAssignment& f) {
            return oracle_->total_bps(f);
          });
  counters_.channel_switches += static_cast<std::uint64_t>(result.switches);
  allocated_ = result.assignment;

  // Opportunistic width fallback (core/width_switch) with hysteresis:
  // a bonded AP narrows to its primary 20 MHz half — or widens back —
  // only when the alternative wins by options_.width_hysteresis.
  for (std::size_t ap = 0; ap < allocated_.size(); ++ap) {
    const net::Channel& base = allocated_[ap];
    net::Channel next = base;
    if (base.is_bonded()) {
      const core::WidthDecision d = core::decide_width(
          wlan_, static_cast<int>(ap), clients_of_locked(static_cast<int>(ap)));
      const bool was_narrow = !operating_[ap].is_bonded() &&
                              operating_[ap].primary() == base.primary();
      const bool narrow =
          was_narrow ? !(d.cell_bps_40 > options_.width_hysteresis *
                                             d.cell_bps_20)
                     : d.cell_bps_20 > options_.width_hysteresis *
                                           d.cell_bps_40;
      if (narrow) next = net::Channel::basic(base.primary());
      if (narrow != was_narrow) ++counters_.width_switches;
    }
    operating_[ap] = next;
  }

  ++epoch_;
  ++counters_.epochs;
  write_snapshot_locked();
  counters_.last_epoch_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  if (options_.epoch_s > 0.0) {
    next_epoch_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(options_.epoch_s));
  }
  if (options_.log_epochs) {
    const core::OracleCacheStats os = oracle_->stats();
    std::fprintf(stderr,
                 "acornd: wlan %u epoch %llu: %d switches, %.2f ms, "
                 "oracle %llu evals / %llu hits\n",
                 wlan_id_, static_cast<unsigned long long>(epoch_),
                 result.switches, counters_.last_epoch_ms,
                 static_cast<unsigned long long>(os.cell_evals),
                 static_cast<unsigned long long>(os.cell_hits));
  }
}

void WlanShard::ensure_oracle() {
  if (!oracle_) {
    oracle_ = std::make_shared<core::CachedOracle>(wlan_, assoc_);
  }
}

void WlanShard::invalidate_oracle() {
  if (oracle_) {
    // Bank the retired oracle's counters so stats survive the rebuild.
    const core::OracleCacheStats s = oracle_->stats();
    counters_.oracle_cell_evals += s.cell_evals;
    counters_.oracle_cell_hits += s.cell_hits;
    counters_.oracle_share_hits += s.share_hits;
    oracle_.reset();
  }
}

WlanSnapshot WlanShard::build_snapshot_locked() const {
  WlanSnapshot snap;
  snap.wlan_id = wlan_id_;
  snap.epoch = epoch_;
  snap.events_applied = events_applied_;
  snap.deployment = deployment_text_;
  snap.association = assoc_;
  snap.allocated = allocated_;
  snap.operating = operating_;
  snap.loss_overrides.reserve(loss_overrides_.size());
  for (const auto& [key, loss] : loss_overrides_) {
    snap.loss_overrides.push_back(LossOverride{key.first, key.second, loss});
  }
  snap.loads.reserve(loads_.size());
  for (const auto& [client, load] : loads_) {
    snap.loads.push_back(LoadHint{client, load});
  }
  return snap;
}

void WlanShard::write_snapshot_locked() {
  if (options_.state_dir.empty()) return;
  if (write_snapshot(options_.state_dir, build_snapshot_locked())) {
    ++counters_.snapshots_written;
  }
}

void WlanShard::write_state_snapshot() {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  write_snapshot_locked();
  publish_counters_locked();
}

void WlanShard::publish_counters_locked() {
  ShardCounters out = counters_;
  if (oracle_) {
    const core::OracleCacheStats s = oracle_->stats();
    out.oracle_cell_evals += s.cell_evals;
    out.oracle_cell_hits += s.cell_hits;
    out.oracle_share_hits += s.share_hits;
  }
  const std::lock_guard<std::mutex> lock(counters_mutex_);
  published_counters_ = out;
}

std::vector<int> WlanShard::clients_of_locked(int ap) const {
  std::vector<int> out;
  for (std::size_t c = 0; c < assoc_.size(); ++c) {
    if (assoc_[c] == ap) out.push_back(static_cast<int>(c));
  }
  return out;
}

ShardCounters WlanShard::counters() const {
  // Reads the last published copy: a stats query must never block on
  // state_mutex_, which the shard thread holds across a whole epoch.
  const std::lock_guard<std::mutex> lock(counters_mutex_);
  return published_counters_;
}

WlanSnapshot WlanShard::state_snapshot() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return build_snapshot_locked();
}

}  // namespace acorn::service
