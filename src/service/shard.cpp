#include "service/shard.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/width_switch.hpp"
#include "service/sync_coordinator.hpp"

namespace acorn::service {

namespace {

/// Consecutive WAL fsync failures tolerated (each retried after
/// kWalSyncRetryBackoff) before the shard gives up on durability and
/// releases the withheld batch anyway.
constexpr std::uint32_t kMaxWalSyncFailures = 3;
constexpr auto kWalSyncRetryBackoff = std::chrono::milliseconds(10);

/// Pooled mode: jobs one scheduling pass may drain before the shard is
/// requeued behind the other ready shards. Bounds how long one
/// backlogged WLAN can monopolize a worker; the WAL flush window caps
/// reply latency well before this does.
constexpr int kDrainBatchPerPass = 512;

sim::DeploymentSpec parse_spec(const std::string& text) {
  return sim::parse_deployment(text);
}

core::AcornConfig controller_config(const sim::DeploymentSpec& spec) {
  core::AcornConfig cfg;
  cfg.plan = net::ChannelPlan(spec.num_channels);
  return cfg;
}

}  // namespace

WlanShard::WlanShard(ShardOptions options, WlanSnapshot state,
                     CompletionFn post, std::vector<WalRecord> replay)
    : options_(std::move(options)),
      wlan_id_(state.wlan_id),
      deployment_text_(state.deployment),
      spec_(parse_spec(state.deployment)),
      wlan_(spec_.build()),
      controller_(controller_config(spec_)),
      post_(std::move(post)) {
  const int n_aps = wlan_.topology().num_aps();
  const int n_clients = wlan_.topology().num_clients();
  if (n_aps == 0) throw std::invalid_argument("deployment has no APs");

  if (state.association.empty()) {
    assoc_.assign(static_cast<std::size_t>(n_clients), net::kUnassociated);
  } else {
    if (static_cast<int>(state.association.size()) != n_clients) {
      throw std::invalid_argument("snapshot association size mismatch");
    }
    assoc_ = std::move(state.association);
  }
  if (state.allocated.empty()) {
    // Fresh WLAN: the deterministic equivalent of "whatever the APs
    // booted with" — a random assignment seeded from the deployment.
    util::Rng rng(spec_.seed ^ (0x5eedull * (wlan_id_ + 1)));
    allocated_ =
        controller_.allocation_module().random_assignment(n_aps, rng);
  } else {
    if (static_cast<int>(state.allocated.size()) != n_aps) {
      throw std::invalid_argument("snapshot assignment size mismatch");
    }
    allocated_ = std::move(state.allocated);
  }
  operating_ = state.operating.empty() ? allocated_
                                       : std::move(state.operating);
  if (operating_.size() != allocated_.size()) {
    throw std::invalid_argument("snapshot operating size mismatch");
  }
  for (const LossOverride& o : state.loss_overrides) {
    if (o.ap >= static_cast<std::uint32_t>(n_aps) ||
        o.client >= static_cast<std::uint32_t>(n_clients) ||
        !std::isfinite(o.loss_db) || o.loss_db < 0.0) {
      throw std::invalid_argument("snapshot loss override out of range");
    }
    wlan_.budget().set_ap_client_loss_db(static_cast<int>(o.ap),
                                         static_cast<int>(o.client),
                                         o.loss_db);
    loss_overrides_[{o.ap, o.client}] = o.loss_db;
  }
  for (const LoadHint& l : state.loads) {
    // Same bounds the wire path enforces: a corrupt snapshot must not
    // inject out-of-range client ids that re-persist forever.
    if (l.client >= static_cast<std::uint32_t>(n_clients) ||
        !std::isfinite(l.load) || l.load < 0.0) {
      throw std::invalid_argument("snapshot load hint out of range");
    }
    loads_[l.client] = l.load;
  }
  for (const std::uint32_t c : state.dirty_clients) {
    if (c >= static_cast<std::uint32_t>(n_clients)) {
      throw std::invalid_argument("snapshot dirty client out of range");
    }
    dirty_clients_.insert(static_cast<int>(c));
  }
  epoch_ = state.epoch;
  events_applied_ = state.events_applied;

  // Replay the WAL suffix: records the snapshot does not cover, applied
  // through the same code path that produced them. Determinism makes
  // the result byte-identical to the pre-crash state. Any gap, decode
  // failure, or rejected record ends the replay (the remainder of the
  // log cannot be trusted).
  if (!replay.empty()) {
    replaying_ = true;
    std::uint64_t replayed = 0;
    for (const WalRecord& rec : replay) {
      if (rec.seq <= events_applied_) continue;  // superseded by snapshot
      if (rec.seq != events_applied_ + 1) break;
      try {
        const Frame f = decode_payload(rec.payload);
        apply_locked(f.msg);
      } catch (const WireError&) {
        break;
      }
      if (events_applied_ != rec.seq) break;  // record did not apply
      ++replayed;
    }
    replaying_ = false;
    if (replayed > 0 && options_.log_epochs) {
      std::fprintf(stderr, "acornd: wlan %u: replayed %llu WAL record(s)\n",
                   wlan_id_, static_cast<unsigned long long>(replayed));
    }
  }

  // Shared mode writes through the coordinator's segments instead of a
  // private log file.
  if (options_.coordinator == nullptr && !options_.state_dir.empty() &&
      !wal_.open(options_.state_dir, wlan_id_)) {
    std::fprintf(stderr, "acornd: wlan %u: cannot open WAL in %s\n", wlan_id_,
                 options_.state_dir.c_str());
  }
}

WlanShard::~WlanShard() { stop(); }

void WlanShard::start() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (running_) return;
    running_ = true;
  }
  // Checkpoint before accepting events: a fresh registration is durable
  // immediately (not only after its first epoch), and a recovery's
  // replayed WAL prefix is compacted into the snapshot it rebuilt.
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (write_snapshot_locked()) {
      wal_base_seq_ = events_applied_;
      if (shared_mode()) {
        options_.coordinator->note_checkpoint(wlan_id_, events_applied_);
        // Upgrade path: the snapshot just compacted any legacy
        // per-shard log that recovery merged in; drop the file so a
        // later boot cannot re-merge its stale records.
        remove_wal(options_.state_dir, wlan_id_);
      } else if (wal_.is_open()) {
        wal_.reset();
        wal_unsynced_records_ = 0;
      }
      wal_sync_failures_ = 0;
    }
    publish_counters_locked();
  }
  next_epoch_ = options_.epoch_s > 0.0
                    ? std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(options_.epoch_s))
                    : std::chrono::steady_clock::time_point::max();
  if (options_.executor != nullptr) {
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      pool_attached_ = true;
    }
    options_.executor->attach(*this);
  } else {
    thread_ = std::thread([this] { run(); });
  }
}

void WlanShard::stop() {
  bool detach = false;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!running_ && !thread_.joinable() && !pool_attached_) return;
    running_ = false;
    detach = pool_attached_;
    pool_attached_ = false;
  }
  if (options_.executor != nullptr) {
    // After detach no pooled worker can touch this shard again; drain
    // whatever is still queued on the caller's thread, exactly as the
    // dedicated thread does before exiting.
    if (detach) options_.executor->detach(*this);
    drain_inline();
  } else {
    queue_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }
  // The mailbox is drained and the worker is gone: make the state
  // durable and release any replies still withheld behind the
  // group-commit window.
  write_state_snapshot();
}

void WlanShard::submit(Job job) {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    jobs_.push_back(std::move(job));
  }
  if (options_.executor != nullptr) {
    options_.executor->notify(*this);
  } else {
    queue_cv_.notify_one();
  }
}

std::chrono::steady_clock::time_point WlanShard::flush_deadline() const {
  return first_unflushed_ + std::chrono::microseconds(options_.wal_flush_us);
}

void WlanShard::run() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (true) {
    if (!jobs_.empty()) {
      // Under a sustained backlog the mailbox never drains, so bound
      // how long buffered records (and their withheld replies) can
      // wait: sync mid-backlog once the flush window expires.
      const auto now = std::chrono::steady_clock::now();
      if (wal_dirty_ && now >= flush_deadline() &&
          now >= wal_retry_after_) {
        lock.unlock();
        flush(/*need_sync=*/true);
        lock.lock();
        continue;
      }
      Job job = std::move(jobs_.front());
      jobs_.pop_front();
      lock.unlock();
      process(job);
      lock.lock();
      continue;
    }
    if (!running_) break;  // stop() flushes after the join
    const auto now = std::chrono::steady_clock::now();
    if (wal_dirty_ && now >= wal_retry_after_) {
      // Idle with buffered records: nothing is queued behind them, so
      // waiting out the flush window buys no extra batching — sync now
      // and release the withheld replies.
      lock.unlock();
      flush(/*need_sync=*/true);
      lock.lock();
      continue;
    }
    if (now >= next_epoch_) {
      lock.unlock();
      run_epoch();
      lock.lock();
      continue;
    }
    auto wake = next_epoch_;
    if (wal_dirty_ && wal_retry_after_ < wake) wake = wal_retry_after_;
    queue_cv_.wait_until(lock, wake);
  }
}

std::chrono::steady_clock::time_point WlanShard::run_pass() {
  // One pooled scheduling pass: the body of run() minus the blocking
  // wait — same job order, same mid-backlog and idle flush points, same
  // epoch check — so pooled and dedicated execution apply an identical
  // sequence of operations to the shard state.
  int budget = kDrainBatchPerPass;
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (true) {
    if (!jobs_.empty()) {
      if (budget == 0) {
        // Fairness bound hit with backlog left: yield the worker and
        // requeue behind the other ready shards.
        return std::chrono::steady_clock::time_point::min();
      }
      const auto now = std::chrono::steady_clock::now();
      if (wal_dirty_ && now >= flush_deadline() &&
          now >= wal_retry_after_) {
        lock.unlock();
        flush(/*need_sync=*/true);
        lock.lock();
        continue;
      }
      Job job = std::move(jobs_.front());
      jobs_.pop_front();
      --budget;
      lock.unlock();
      process(job);
      lock.lock();
      continue;
    }
    // stop() detaches and then drains/flushes inline, mirroring the
    // dedicated thread's exit before its final snapshot.
    if (!running_) return std::chrono::steady_clock::time_point::max();
    const auto now = std::chrono::steady_clock::now();
    if (wal_dirty_ && now >= wal_retry_after_) {
      lock.unlock();
      flush(/*need_sync=*/true);
      lock.lock();
      continue;
    }
    if (now >= next_epoch_) {
      lock.unlock();
      run_epoch();
      lock.lock();
      continue;
    }
    // Idle: hand the next deadline (epoch timer, or WAL retry backoff)
    // to the executor's timer wheel; max() means "until notify()".
    auto wake = next_epoch_;
    if (wal_dirty_ && wal_retry_after_ < wake) wake = wal_retry_after_;
    return wake;
  }
}

void WlanShard::drain_inline() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (!jobs_.empty()) {
    Job job = std::move(jobs_.front());
    jobs_.pop_front();
    lock.unlock();
    process(job);
    lock.lock();
  }
}

bool WlanShard::loggable(const Message& msg) {
  return std::holds_alternative<ClientJoin>(msg) ||
         std::holds_alternative<ClientLeave>(msg) ||
         std::holds_alternative<SnrUpdate>(msg) ||
         std::holds_alternative<LoadUpdate>(msg) ||
         std::holds_alternative<ForceReconfigure>(msg);
}

void WlanShard::process(Job& job) {
  const auto now = std::chrono::steady_clock::now();
  if (job.kind == Job::Kind::kAttachFollower) {
    // Snapshot-then-stream: the frame carries everything applied so
    // far; every later durable record is forwarded in flush_wal. (Any
    // records already pending re-cover a prefix of the snapshot — the
    // follower skips them by ordinal.)
    std::vector<std::uint8_t> bytes;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      bytes = encode_snapshot(build_snapshot_locked());
    }
    followers_.push_back(job.conn_id);
    post_(job.conn_id, job.t0,
          encode_frame(0, SnapshotFrame{std::move(bytes)}));
    return;
  }
  if (job.kind == Job::Kind::kDetachFollower) {
    std::erase(followers_, job.conn_id);
    return;
  }

  std::vector<std::uint8_t> frame;
  bool logged = false;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    const bool mutating = loggable(job.msg);
    const std::uint64_t before = events_applied_;
    Message reply = apply_locked(job.msg);
    frame = encode_frame(job.seq, reply);
    if (mutating && events_applied_ != before) {
      const std::uint64_t seq = events_applied_;
      std::vector<std::uint8_t> payload = encode_payload(0, job.msg);
      // seq <= wal_base_seq_ means an epoch inside apply_locked already
      // snapshotted this event; the log does not need it.
      if (shared_mode()) {
        // Records ride to the coordinator inside the CommitBatch; a
        // degraded coordinator means non-durable operation, same as a
        // disabled local WAL.
        if (options_.coordinator->durable() && seq > wal_base_seq_) {
          ++counters_.wal_records;
          logged = true;
        }
        if (logged || !followers_.empty()) {
          pending_records_.push_back(WalRecord{seq, std::move(payload)});
        }
      } else {
        if (wal_.is_open() && seq > wal_base_seq_) {
          wal_.append(seq, payload);
          ++counters_.wal_records;
          ++wal_unsynced_records_;
          logged = true;
        }
        if (!followers_.empty()) {
          pending_records_.push_back(WalRecord{seq, std::move(payload)});
        }
      }
      if (seq > pending_max_seq_) pending_max_seq_ = seq;
    }
    publish_counters_locked();
  }
  if (logged && !wal_dirty_) {
    wal_dirty_ = true;
    first_unflushed_ = now;
  }
  if (logged || wal_dirty_ || !pending_replies_.empty() ||
      (shared_mode() && shared_inflight())) {
    // Withhold the reply until its record is durable; non-logged
    // replies queue behind it to preserve per-connection FIFO order —
    // including order against batches already queued at the
    // coordinator, hence the in-flight check.
    pending_replies_.push_back(PendingReply{job.conn_id, job.t0,
                                           std::move(frame)});
  } else {
    post_(job.conn_id, job.t0, std::move(frame));
  }
  if (!wal_dirty_ || wal_base_seq_ >= pending_max_seq_) {
    // Everything withheld is already durable (snapshot compaction, or
    // logging is off entirely): release without an fsync.
    if (!pending_replies_.empty() || !pending_records_.empty()) {
      flush(/*need_sync=*/false);
    }
    wal_dirty_ = false;
    return;
  }
  // Idle/serial fast path: when this event drained the mailbox there is
  // nothing queued behind its record, so the flush window buys no
  // batching — fdatasync on the spot instead of bouncing through a full
  // scheduler pass first. A serial (one-in-flight) client pays exactly
  // one sync per event either way; this trims the extra mailbox lock
  // round-trip and pass dispatch from every one of them.
  bool drained;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    drained = jobs_.empty();
  }
  if (drained && std::chrono::steady_clock::now() >= wal_retry_after_) {
    flush(/*need_sync=*/true);
  }
}

Message WlanShard::apply_locked(const Message& msg) {
  const int n_aps = wlan_.topology().num_aps();
  const int n_clients = wlan_.topology().num_clients();

  if (const auto* join = std::get_if<ClientJoin>(&msg)) {
    if (join->client >= static_cast<std::uint32_t>(n_clients)) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "client id out of range"};
    }
    const int c = static_cast<int>(join->client);
    const int before = assoc_[static_cast<std::size_t>(c)];
    // Re-running Algorithm 1 for an already-associated client is a
    // re-association probe: detach first so the utility terms see the
    // network without it (exactly the paper's trial association).
    assoc_[static_cast<std::size_t>(c)] = net::kUnassociated;
    const std::optional<int> ap =
        controller_.associate_client(wlan_, assoc_, operating_, c);
    if (!ap.has_value()) {
      // Failed probe: Algorithm 1 admits no AP right now. Keep the
      // previous association instead of silently dropping the client.
      assoc_[static_cast<std::size_t>(c)] = before;
    }
    ++events_applied_;
    ++counters_.events;
    if (assoc_[static_cast<std::size_t>(c)] != before) {
      ++counters_.assoc_changes;
      invalidate_oracle();
    }
    return OkReply{assoc_[static_cast<std::size_t>(c)]};
  }
  if (const auto* leave = std::get_if<ClientLeave>(&msg)) {
    if (leave->client >= static_cast<std::uint32_t>(n_clients)) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "client id out of range"};
    }
    const int c = static_cast<int>(leave->client);
    if (assoc_[static_cast<std::size_t>(c)] != net::kUnassociated) {
      assoc_[static_cast<std::size_t>(c)] = net::kUnassociated;
      ++counters_.assoc_changes;
      invalidate_oracle();
    }
    ++events_applied_;
    ++counters_.events;
    return OkReply{net::kUnassociated};
  }
  if (const auto* snr = std::get_if<SnrUpdate>(&msg)) {
    if (snr->ap >= static_cast<std::uint32_t>(n_aps) ||
        snr->client >= static_cast<std::uint32_t>(n_clients)) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "ap/client id out of range"};
    }
    // A NaN/Inf loss would poison every later SNR/rate computation and
    // survive restart through the snapshot; a negative loss is a gain.
    if (!std::isfinite(snr->loss_db) || snr->loss_db < 0.0) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "loss_db must be finite and non-negative"};
    }
    wlan_.budget().set_ap_client_loss_db(static_cast<int>(snr->ap),
                                         static_cast<int>(snr->client),
                                         snr->loss_db);
    loss_overrides_[{snr->ap, snr->client}] = snr->loss_db;
    dirty_clients_.insert(static_cast<int>(snr->client));
    invalidate_oracle();
    ++events_applied_;
    ++counters_.events;
    return OkReply{};
  }
  if (const auto* load = std::get_if<LoadUpdate>(&msg)) {
    if (load->client >= static_cast<std::uint32_t>(n_clients)) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "client id out of range"};
    }
    if (!std::isfinite(load->load) || load->load < 0.0) {
      return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                        "load must be finite and non-negative"};
    }
    const auto it = loads_.find(load->client);
    const bool changed = it == loads_.end() || it->second != load->load;
    loads_[load->client] = load->load;
    // The oracle's objective weights cells by offered load, so a load
    // change is a real invalidation, not just bookkeeping.
    if (changed) invalidate_oracle();
    ++events_applied_;
    ++counters_.events;
    return OkReply{};
  }
  if (std::get_if<ForceReconfigure>(&msg) != nullptr) {
    ++events_applied_;
    ++counters_.events;
    const std::uint64_t before = counters_.channel_switches;
    run_epoch_locked();
    return OkReply{
        static_cast<std::int32_t>(counters_.channel_switches - before)};
  }
  if (std::get_if<QueryConfig>(&msg) != nullptr) {
    ++counters_.events;
    ensure_oracle();
    ConfigReply reply;
    reply.wlan_id = wlan_id_;
    reply.epoch = epoch_;
    reply.events_applied = events_applied_;
    reply.total_goodput_bps =
        oracle_->snapshot().evaluate(operating_).total_goodput_bps;
    reply.association = assoc_;
    reply.allocated = allocated_;
    reply.operating = operating_;
    return reply;
  }
  return ErrorReply{static_cast<std::uint16_t>(ErrorCode::kBadArgument),
                    "message not routable to a shard"};
}

void WlanShard::run_epoch() {
  const auto now = std::chrono::steady_clock::now();
  bool logged = false;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    // A timer-started epoch is an event in the replay stream: log and
    // forward it as a synthesized ForceReconfigure, so recovery and
    // followers re-run it at the same point in the sequence.
    ++events_applied_;
    const std::uint64_t seq = events_applied_;
    run_epoch_locked();
    const bool shared_durable =
        shared_mode() && options_.coordinator->durable();
    if (wal_.is_open() || shared_durable || !followers_.empty()) {
      std::vector<std::uint8_t> payload =
          encode_payload(0, Message{ForceReconfigure{wlan_id_}});
      // The epoch snapshot normally covers this event (seq ==
      // wal_base_seq_); the record is only logged if it failed.
      if (seq > wal_base_seq_) {
        if (wal_.is_open()) {
          wal_.append(seq, payload);
          ++counters_.wal_records;
          ++wal_unsynced_records_;
          logged = true;
        } else if (shared_durable) {
          ++counters_.wal_records;
          logged = true;
        }
      }
      // Shared mode ships logged records to the coordinator via
      // pending_records_; either mode also keeps them for followers.
      if ((shared_mode() && logged) || !followers_.empty()) {
        pending_records_.push_back(WalRecord{seq, std::move(payload)});
      }
    }
    if (seq > pending_max_seq_) pending_max_seq_ = seq;
    publish_counters_locked();
  }
  if (logged && !wal_dirty_) {
    wal_dirty_ = true;
    first_unflushed_ = now;
  }
  if (!wal_dirty_ || wal_base_seq_ >= pending_max_seq_) {
    if (!pending_replies_.empty() || !pending_records_.empty()) {
      flush(/*need_sync=*/false);
    }
    wal_dirty_ = false;
  }
}

void WlanShard::run_epoch_locked() {
  const auto t0 = std::chrono::steady_clock::now();

  // Incremental re-association: re-probe (detach + Algorithm 1 trial
  // association) only the clients whose links changed since the last
  // epoch. A partial event stream costs a handful of probes here, never
  // a full re-association sweep.
  bool assoc_changed = false;
  for (const int c : dirty_clients_) {
    const std::size_t ci = static_cast<std::size_t>(c);
    const int before = assoc_[ci];
    if (before == net::kUnassociated) continue;  // joins probe themselves
    assoc_[ci] = net::kUnassociated;
    const std::optional<int> ap =
        controller_.associate_client(wlan_, assoc_, operating_, c);
    // A failed probe must not strand an associated client: restore the
    // AP it had (its link may have degraded, but it is still attached).
    if (!ap.has_value()) assoc_[ci] = before;
    if (assoc_[ci] != before) {
      ++counters_.assoc_changes;
      assoc_changed = true;
    }
  }
  dirty_clients_.clear();
  if (assoc_changed) invalidate_oracle();
  ensure_oracle();

  // Algorithm 2 with the incremental oracle; its epsilon (stop below 5%
  // aggregate improvement) is the channel-level hysteresis. Handing the
  // CachedOracle itself (not a per-call lambda) lets the allocator use
  // the batched multi-candidate scan — same result, fewer epochs spent
  // allocating.
  const core::AllocationResult result =
      controller_.allocation_module().allocate(wlan_, assoc_, allocated_,
                                               *oracle_);
  counters_.channel_switches += static_cast<std::uint64_t>(result.switches);
  counters_.alloc_evaluations +=
      result.evaluations > 0 ? static_cast<std::uint64_t>(result.evaluations)
                             : 0;
  allocated_ = result.assignment;

  // Opportunistic width fallback (core/width_switch) with hysteresis:
  // a bonded AP narrows to the better of its 20 MHz halves — or widens
  // back — only when the alternative wins by options_.width_hysteresis.
  // The context-aware decide_width sees the interference graph and the
  // full allocation, so secondary-channel hidden interference can send
  // an AP to the upper half instead of silently defaulting to primary.
  for (std::size_t ap = 0; ap < allocated_.size(); ++ap) {
    const net::Channel& base = allocated_[ap];
    net::Channel next = base;
    if (base.is_bonded()) {
      const core::WidthDecision d = core::decide_width(
          wlan_, static_cast<int>(ap), clients_of_locked(static_cast<int>(ap)),
          oracle_->graph(), allocated_);
      const bool was_narrow =
          !operating_[ap].is_bonded() && base.conflicts(operating_[ap]);
      const bool narrow =
          was_narrow ? !(d.cell_bps_40 > options_.width_hysteresis *
                                             d.cell_bps_20)
                     : d.cell_bps_20 > options_.width_hysteresis *
                                           d.cell_bps_40;
      if (narrow) {
        // The better half; primary on ties (strictly better secondary
        // wins). d.channel only names the half when the bond lost
        // outright, so recompute under hysteresis holds.
        next = d.cell_bps_20_secondary > d.cell_bps_20_primary
                   ? net::Channel::basic(base.primary() + 1)
                   : net::Channel::basic(base.primary());
      }
      if (narrow != was_narrow) ++counters_.width_switches;
    }
    operating_[ap] = next;
  }

  ++epoch_;
  ++counters_.epochs;
  if (write_snapshot_locked()) {
    // The snapshot supersedes every logged record: truncate the WAL
    // (per-shard mode) or report the checkpoint so the coordinator can
    // retire fully-covered segments (shared mode); either way recovery
    // replays only what arrives after this point.
    wal_base_seq_ = events_applied_;
    if (shared_mode()) {
      options_.coordinator->note_checkpoint(wlan_id_, events_applied_);
    } else if (wal_.is_open()) {
      wal_.reset();
      wal_unsynced_records_ = 0;
    }
    wal_sync_failures_ = 0;
  }
  counters_.last_epoch_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  if (options_.epoch_latency != nullptr) {
    options_.epoch_latency->record(std::chrono::steady_clock::now() - t0);
  }
  if (options_.epoch_s > 0.0) {
    next_epoch_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(options_.epoch_s));
  }
  if (options_.log_epochs) {
    const core::OracleCacheStats os = oracle_->stats();
    std::fprintf(stderr,
                 "acornd: wlan %u epoch %llu: %d switches, %.2f ms, "
                 "oracle %llu evals / %llu hits\n",
                 wlan_id_, static_cast<unsigned long long>(epoch_),
                 result.switches, counters_.last_epoch_ms,
                 static_cast<unsigned long long>(os.cell_evals),
                 static_cast<unsigned long long>(os.cell_hits));
  }
}

void WlanShard::ensure_oracle() {
  if (oracle_) return;
  // Reported offered loads weight the objective: a client with load w
  // contributes w times its goodput, so Algorithm 2 stops optimizing
  // for clients with nothing to send. No hints = unweighted (and the
  // oracle stays bit-identical to the plain evaluator).
  std::vector<double> weights;
  if (!loads_.empty()) {
    weights.assign(assoc_.size(), 1.0);
    for (const auto& [client, load] : loads_) {
      weights[static_cast<std::size_t>(client)] = load;
    }
  }
  oracle_ = std::make_shared<core::CachedOracle>(
      wlan_, assoc_, mac::TrafficType::kUdp, std::move(weights));
}

void WlanShard::invalidate_oracle() {
  if (oracle_) {
    // Bank the retired oracle's counters so stats survive the rebuild.
    const core::OracleCacheStats s = oracle_->stats();
    counters_.oracle_cell_evals += s.cell_evals;
    counters_.oracle_cell_hits += s.cell_hits;
    counters_.oracle_share_evals += s.share_evals;
    counters_.oracle_share_hits += s.share_hits;
    oracle_.reset();
  }
}

WlanSnapshot WlanShard::build_snapshot_locked() const {
  WlanSnapshot snap;
  snap.wlan_id = wlan_id_;
  snap.epoch = epoch_;
  snap.events_applied = events_applied_;
  snap.deployment = deployment_text_;
  snap.association = assoc_;
  snap.allocated = allocated_;
  snap.operating = operating_;
  snap.loss_overrides.reserve(loss_overrides_.size());
  for (const auto& [key, loss] : loss_overrides_) {
    snap.loss_overrides.push_back(LossOverride{key.first, key.second, loss});
  }
  snap.loads.reserve(loads_.size());
  for (const auto& [client, load] : loads_) {
    snap.loads.push_back(LoadHint{client, load});
  }
  snap.dirty_clients.reserve(dirty_clients_.size());
  for (const int c : dirty_clients_) {
    snap.dirty_clients.push_back(static_cast<std::uint32_t>(c));
  }
  return snap;
}

bool WlanShard::write_snapshot_locked() {
  if (options_.state_dir.empty() || replaying_) return false;
  if (!write_snapshot(options_.state_dir, build_snapshot_locked())) {
    return false;
  }
  ++counters_.snapshots_written;
  return true;
}

void WlanShard::write_state_snapshot() {
  bool need_sync = wal_dirty_;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (write_snapshot_locked()) {
      wal_base_seq_ = events_applied_;
      if (shared_mode()) {
        options_.coordinator->note_checkpoint(wlan_id_, events_applied_);
      } else if (wal_.is_open()) {
        wal_.reset();
        wal_unsynced_records_ = 0;
      }
      wal_sync_failures_ = 0;
      need_sync = false;
    }
    publish_counters_locked();
  }
  if (!pending_replies_.empty() || !pending_records_.empty() || need_sync) {
    flush(need_sync, /*final=*/true);
  } else if (shared_mode()) {
    // Nothing new to release, but batches may still be in flight at the
    // coordinator; the shard must outlive their on_durable hooks.
    wait_shared_drain();
  }
  wal_dirty_ = false;
}

void WlanShard::flush(bool need_sync, bool final) {
  if (shared_mode()) {
    flush_shared(need_sync, final);
  } else {
    flush_wal(need_sync, final);
  }
}

void WlanShard::flush_shared(bool need_sync, bool final) {
  if (!need_sync && !shared_inflight()) {
    // Nothing is queued ahead at the coordinator and nothing needs a
    // sync (snapshot compaction, or durability is off): release on this
    // thread, no queue round-trip.
    release_pending();
    wal_dirty_ = false;
    return;
  }
  if (pending_replies_.empty() && pending_records_.empty()) {
    wal_dirty_ = false;
    if (final) wait_shared_drain();
    return;
  }
  CommitBatch batch;
  batch.wlan_id = wlan_id_;
  batch.records = std::move(pending_records_);
  pending_records_.clear();
  // Records at or below this are already snapshot-covered: the
  // coordinator forwards them to followers but does not write them.
  batch.write_from_seq = wal_base_seq_;
  batch.replies.reserve(pending_replies_.size());
  for (PendingReply& p : pending_replies_) {
    batch.replies.push_back(
        CommitBatch::Reply{p.conn_id, p.t0, std::move(p.frame)});
  }
  pending_replies_.clear();
  batch.followers = followers_;
  batch.post = post_;
  batch.on_durable = [this] {
    {
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      --commits_inflight_;
    }
    inflight_cv_.notify_all();
  };
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    ++commits_inflight_;
  }
  if (need_sync) {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.wal_flushes;
    publish_counters_locked();
  }
  options_.coordinator->submit(std::move(batch));
  wal_dirty_ = false;
  if (final) wait_shared_drain();
}

void WlanShard::wait_shared_drain() {
  std::unique_lock<std::mutex> lock(inflight_mutex_);
  inflight_cv_.wait(lock, [this] { return commits_inflight_ == 0; });
}

void WlanShard::release_pending() {
  if (!followers_.empty() && !pending_records_.empty()) {
    const auto now = std::chrono::steady_clock::now();
    for (const std::uint64_t conn : followers_) {
      for (const WalRecord& rec : pending_records_) {
        post_(conn, now,
              encode_frame(0, LogRecordFrame{wlan_id_, rec.seq, rec.payload}));
      }
    }
  }
  pending_records_.clear();
  for (PendingReply& p : pending_replies_) {
    post_(p.conn_id, p.t0, std::move(p.frame));
  }
  pending_replies_.clear();
}

void WlanShard::flush_wal(bool need_sync, bool final) {
  if (need_sync && wal_.is_open()) {
    const auto t0 = std::chrono::steady_clock::now();
    if (wal_.sync()) {
      wal_sync_failures_ = 0;
      if (options_.metrics != nullptr) {
        options_.metrics->wal_syncs.fetch_add(1, std::memory_order_relaxed);
        options_.metrics->wal_coalesced_events.fetch_add(
            wal_unsynced_records_, std::memory_order_relaxed);
        options_.metrics->wal_batch_events.record_us(wal_unsynced_records_);
        options_.metrics->wal_sync_latency.record(
            std::chrono::steady_clock::now() - t0);
      }
      wal_unsynced_records_ = 0;
      const std::lock_guard<std::mutex> lock(state_mutex_);
      ++counters_.wal_flushes;
      publish_counters_locked();
    } else {
      ++wal_sync_failures_;
      std::fprintf(stderr, "acornd: wlan %u: WAL fsync failed\n", wlan_id_);
      if (!final && wal_.is_open() &&
          wal_sync_failures_ < kMaxWalSyncFailures) {
        // Neither clients nor followers may observe these records yet
        // — followers only ever see durable events. Keep the batch
        // withheld and let the run loop retry after a backoff.
        wal_retry_after_ =
            std::chrono::steady_clock::now() + kWalSyncRetryBackoff;
        return;  // wal_dirty_ stays set
      }
      // Retries exhausted, the writer gave itself up, or we are
      // shutting down: disable the log and release the batch anyway.
      // Loudly, so an operator sees a sick disk instead of a silent
      // durability hole — and consistently, so clients and followers
      // are not withheld forever.
      if (wal_.is_open()) {
        std::fprintf(stderr,
                     "acornd: wlan %u: disabling WAL after %u failed "
                     "flushes; continuing without durability\n",
                     wlan_id_, wal_sync_failures_);
        wal_.close();
        wal_unsynced_records_ = 0;
      }
    }
  }
  release_pending();
  wal_dirty_ = false;
}

void WlanShard::publish_counters_locked() {
  ShardCounters out = counters_;
  if (oracle_) {
    const core::OracleCacheStats s = oracle_->stats();
    out.oracle_cell_evals += s.cell_evals;
    out.oracle_cell_hits += s.cell_hits;
    out.oracle_share_evals += s.share_evals;
    out.oracle_share_hits += s.share_hits;
  }
  const std::lock_guard<std::mutex> lock(counters_mutex_);
  published_counters_ = out;
}

std::vector<int> WlanShard::clients_of_locked(int ap) const {
  std::vector<int> out;
  for (std::size_t c = 0; c < assoc_.size(); ++c) {
    if (assoc_[c] == ap) out.push_back(static_cast<int>(c));
  }
  return out;
}

ShardCounters WlanShard::counters() const {
  // Reads the last published copy: a stats query must never block on
  // state_mutex_, which the shard thread holds across a whole epoch.
  const std::lock_guard<std::mutex> lock(counters_mutex_);
  return published_counters_;
}

WlanSnapshot WlanShard::state_snapshot() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return build_snapshot_locked();
}

}  // namespace acorn::service
