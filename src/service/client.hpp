// Blocking wire-protocol client for acornd, shared by `acornctl
// --connect`, the replay demo, the service tests and the protocol
// bench. Endpoints are written `unix:/path/to/sock` or `host:port`.
#pragma once

#include <cstdint>
#include <string>

#include "service/wire.hpp"

namespace acorn::service {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, std::uint16_t port);
  /// Parse and connect to `unix:/path` or `host:port`. Throws
  /// std::system_error / std::invalid_argument on failure.
  static Client connect(const std::string& endpoint);

  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Bound every subsequent recv() read by `ms` (SO_RCVTIMEO); an
  /// expired wait surfaces as std::system_error with EAGAIN /
  /// EWOULDBLOCK. 0 restores blocking reads.
  void set_recv_timeout_ms(long ms);

  /// Send one request frame; returns its sequence number.
  std::uint32_t send(const Message& msg);
  /// Block for the next complete frame. Throws WireError on garbage and
  /// std::runtime_error when the daemon closes the connection.
  Frame recv();
  /// send() + recv() until the reply matching the request arrives.
  Message call(const Message& msg);

  void close();

 private:
  int fd_ = -1;
  std::uint32_t next_seq_ = 1;
  FrameBuffer buf_;
};

}  // namespace acorn::service
