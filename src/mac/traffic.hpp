// Transport-layer goodput on top of the MAC model.
//
// UDP consumes whatever the cell delivers (saturated downlink). TCP is
// loss-sensitive: residual loss that survives MAC retries triggers
// congestion control, so small PER differences are amplified — the
// paper's §3.2 observes ~30% of TCP trials preferring 20 MHz vs ~10% for
// UDP, and Table 3's TCP totals sit well below the UDP totals.
#pragma once

namespace acorn::mac {

enum class TrafficType { kUdp, kTcp };

struct TrafficModel {
  /// Fixed protocol efficiency of TCP over the MAC goodput (ACK airtime,
  /// header overhead, congestion-control sawtooth at short timescales).
  double tcp_efficiency = 0.72;
  /// UDP/IP header efficiency.
  double udp_efficiency = 0.97;
  /// Round-trip time used by the Mathis throughput cap.
  double rtt_s = 0.012;
  /// Short-timescale loss sensitivity: even when MAC retries recover a
  /// lost frame, the added delay jitter and ACK compression back off the
  /// congestion window, so TCP goodput shrinks as (1 - PER)^k on top of
  /// the MAC goodput (paper §3.2: "even small PER increments can
  /// significantly degrade performance").
  double tcp_loss_sensitivity = 2.0;
  /// TCP segment size (bits).
  int mss_bits = 1460 * 8;
  /// MAC retry limit: residual loss is PER^(retry_limit+1).
  int retry_limit = 7;
};

/// Residual end-to-end packet loss after MAC-layer retries.
double residual_loss(const TrafficModel& model, double per);

/// Mathis et al. TCP throughput cap: MSS / (RTT * sqrt(2q/3)). Returns
/// +infinity when q == 0.
double mathis_cap_bps(const TrafficModel& model, double residual_loss);

/// Transport goodput given the MAC-level throughput `mac_bps` and the
/// PER of the (dominant) link feeding it.
double transport_goodput_bps(const TrafficModel& model, TrafficType type,
                             double mac_bps, double per);

}  // namespace acorn::mac
