#include "mac/dcf.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <utility>

namespace acorn::mac {

namespace {

struct Station {
  int backoff = 0;
  int cw = 15;
  int retries = 0;
};

int draw_backoff(util::Rng& rng, int cw) {
  return static_cast<int>(rng.uniform_int(0, cw));
}

}  // namespace

DcfResult simulate_dcf(const DcfConfig& config, int n_stations,
                       long long iterations, util::Rng& rng) {
  if (n_stations < 1 || iterations < 1) {
    throw std::invalid_argument("need stations >= 1 and iterations >= 1");
  }
  std::vector<Station> stations(static_cast<std::size_t>(n_stations));
  for (Station& s : stations) {
    s.cw = config.cw_min;
    s.backoff = draw_backoff(rng, s.cw);
  }

  DcfResult result;
  result.station_share.assign(static_cast<std::size_t>(n_stations), 0.0);
  long long events = 0;
  while (events < iterations) {
    // Advance to the next transmission: all stations count down idle
    // slots together; the minimum backoff decides who transmits.
    int min_backoff = stations[0].backoff;
    for (const Station& s : stations) {
      min_backoff = std::min(min_backoff, s.backoff);
    }
    result.elapsed_us +=
        config.difs_us + min_backoff * config.slot_us + config.frame_us;
    std::vector<int> transmitters;
    for (int i = 0; i < n_stations; ++i) {
      stations[static_cast<std::size_t>(i)].backoff -= min_backoff;
      if (stations[static_cast<std::size_t>(i)].backoff == 0) {
        transmitters.push_back(i);
      }
    }
    ++events;
    if (transmitters.size() == 1) {
      const int winner = transmitters.front();
      ++result.successes;
      result.station_share[static_cast<std::size_t>(winner)] +=
          config.frame_us;
      Station& s = stations[static_cast<std::size_t>(winner)];
      s.cw = config.cw_min;
      s.retries = 0;
      s.backoff = draw_backoff(rng, s.cw);
    } else {
      ++result.collisions;
      for (int i : transmitters) {
        Station& s = stations[static_cast<std::size_t>(i)];
        ++s.retries;
        if (s.retries > config.retry_limit) {
          s.cw = config.cw_min;
          s.retries = 0;
        } else {
          s.cw = std::min(2 * s.cw + 1, config.cw_max);
        }
        s.backoff = draw_backoff(rng, s.cw);
      }
    }
  }

  double successful_us = 0.0;
  for (double share_us : result.station_share) successful_us += share_us;
  if (successful_us > 0.0) {
    for (double& share : result.station_share) share /= successful_us;
  }
  result.utilization = successful_us / result.elapsed_us;
  result.collision_rate =
      static_cast<double>(result.collisions) /
      static_cast<double>(result.successes + result.collisions);
  return result;
}

MultiDcfResult simulate_dcf_multichannel(
    const DcfConfig& config, const std::vector<MultiDcfStation>& specs,
    long long iterations, util::Rng& rng) {
  if (specs.empty() || iterations < 1) {
    throw std::invalid_argument("need stations >= 1 and iterations >= 1");
  }
  const int n = static_cast<int>(specs.size());

  // Work in integer slot time; DIFS and the frame round up to whole
  // slots so channel busy intervals align with backoff countdowns.
  const auto to_slots = [&](double us) {
    return static_cast<long long>(
        std::max(1.0, std::ceil(us / config.slot_us)));
  };
  const long long difs_slots = to_slots(config.difs_us);
  const long long frame_slots = to_slots(config.frame_us);

  // Basic channels any station can touch.
  int num_channels = 0;
  for (const MultiDcfStation& s : specs) {
    for (int c : s.channel.occupied()) {
      num_channels = std::max(num_channels, c + 1);
    }
  }
  std::vector<long long> busy_until(static_cast<std::size_t>(num_channels),
                                    0);
  std::vector<char> spanned(static_cast<std::size_t>(num_channels), 0);
  for (const MultiDcfStation& s : specs) {
    for (int c : s.channel.occupied()) {
      spanned[static_cast<std::size_t>(c)] = 1;
    }
  }
  long long spanned_channels = 0;
  for (char c : spanned) spanned_channels += c;

  struct Station {
    long long backoff = 0;
    int cw = 15;
    int retries = 0;
    // Carrier-sense domain: the channels whose idleness gates the
    // backoff countdown (whole bond for static, primary half for DCB).
    std::vector<int> sense;
    int primary = 0;
    int secondary = -1;  // other half of the bond, -1 for basic
  };
  std::vector<Station> stations(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Station& st = stations[static_cast<std::size_t>(i)];
    const MultiDcfStation& spec = specs[static_cast<std::size_t>(i)];
    st.cw = config.cw_min;
    st.backoff = rng.uniform_int(0, st.cw);
    st.primary = spec.channel.primary();
    if (spec.channel.is_bonded()) {
      st.secondary = st.primary + 1;
      if (spec.mode == WidthMode::kStaticWidth) {
        st.sense = spec.channel.occupied();
      } else {
        st.sense = {st.primary};
      }
    } else {
      st.sense = {st.primary};
    }
  }

  MultiDcfResult result;
  result.airtime_full.assign(static_cast<std::size_t>(n), 0.0);
  result.airtime_narrow.assign(static_cast<std::size_t>(n), 0.0);
  result.station_share.assign(static_cast<std::size_t>(n), 0.0);

  // Countdown resumes once every sensed channel has been idle for DIFS.
  const auto avail_start = [&](const Station& st, long long now) {
    long long start = now;
    for (int c : st.sense) {
      start = std::max(start,
                       busy_until[static_cast<std::size_t>(c)] + difs_slots);
    }
    return start;
  };

  long long now = 0;
  long long events = 0;
  std::vector<int> candidates;
  // Chosen transmission set per candidate: primary plus optionally the
  // secondary half.
  std::vector<std::pair<int, bool>> choice;  // station index, wide?
  while (events < iterations) {
    // Event-driven advance: no channel state changes before the
    // earliest backoff expiry, so jump straight to it.
    long long fire = std::numeric_limits<long long>::max();
    for (const Station& st : stations) {
      fire = std::min(fire, avail_start(st, now) + st.backoff);
    }
    for (Station& st : stations) {
      const long long start = avail_start(st, now);
      if (fire > start) st.backoff -= fire - start;
    }
    now = fire;

    candidates.clear();
    for (int i = 0; i < n; ++i) {
      if (stations[static_cast<std::size_t>(i)].backoff == 0) {
        candidates.push_back(i);
      }
    }

    // Width decision per candidate, in station order so rng draws are
    // deterministic.
    choice.clear();
    for (int i : candidates) {
      Station& st = stations[static_cast<std::size_t>(i)];
      const MultiDcfStation& spec = specs[static_cast<std::size_t>(i)];
      if (st.secondary < 0) {
        choice.emplace_back(i, false);
        continue;
      }
      if (spec.mode == WidthMode::kStaticWidth) {
        choice.emplace_back(i, true);  // bond sensed idle by the domain
        continue;
      }
      const bool secondary_idle =
          busy_until[static_cast<std::size_t>(st.secondary)] <= now;
      bool wide = false;
      if (secondary_idle) {
        wide = spec.mode == WidthMode::kAlwaysMax ||
               rng.uniform() < spec.wide_probability;
      }
      choice.emplace_back(i, wide);
    }

    // Group same-slot transmitters into connected overlap components:
    // each component with >= 2 stations is one collision event.
    std::vector<int> component(choice.size());
    for (std::size_t i = 0; i < choice.size(); ++i) {
      component[i] = static_cast<int>(i);
    }
    const auto touches = [&](std::size_t a, int channel) {
      const Station& st =
          stations[static_cast<std::size_t>(choice[a].first)];
      return st.primary == channel ||
             (choice[a].second && st.secondary == channel);
    };
    const auto overlaps = [&](std::size_t a, std::size_t b) {
      const Station& st =
          stations[static_cast<std::size_t>(choice[a].first)];
      if (touches(b, st.primary)) return true;
      return choice[a].second && touches(b, st.secondary);
    };
    // Tiny candidate sets: union by repeated min-label relaxation.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t a = 0; a < choice.size(); ++a) {
        for (std::size_t b = a + 1; b < choice.size(); ++b) {
          if (component[a] != component[b] && overlaps(a, b)) {
            const int label = std::min(component[a], component[b]);
            component[a] = component[b] = label;
            changed = true;
          }
        }
      }
    }
    std::vector<int> component_size(choice.size(), 0);
    for (std::size_t a = 0; a < choice.size(); ++a) {
      ++component_size[static_cast<std::size_t>(component[a])];
    }

    std::vector<char> collision_counted(choice.size(), 0);
    for (std::size_t a = 0; a < choice.size(); ++a) {
      const int i = choice[a].first;
      const bool wide = choice[a].second;
      Station& st = stations[static_cast<std::size_t>(i)];
      busy_until[static_cast<std::size_t>(st.primary)] = now + frame_slots;
      if (wide) {
        busy_until[static_cast<std::size_t>(st.secondary)] =
            now + frame_slots;
      }
      if (component_size[static_cast<std::size_t>(component[a])] == 1) {
        ++result.successes;
        ++events;
        const double air = config.frame_us;
        if (wide || st.secondary < 0) {
          result.airtime_full[static_cast<std::size_t>(i)] += air;
        } else {
          result.airtime_narrow[static_cast<std::size_t>(i)] += air;
        }
        st.cw = config.cw_min;
        st.retries = 0;
      } else {
        if (!collision_counted[static_cast<std::size_t>(component[a])]) {
          collision_counted[static_cast<std::size_t>(component[a])] = 1;
          ++result.collisions;
          ++events;
        }
        ++st.retries;
        if (st.retries > config.retry_limit) {
          st.cw = config.cw_min;
          st.retries = 0;
        } else {
          st.cw = std::min(2 * st.cw + 1, config.cw_max);
        }
      }
      st.backoff = rng.uniform_int(0, st.cw);
    }
  }

  long long end = now;
  for (long long b : busy_until) end = std::max(end, b);
  result.elapsed_us = static_cast<double>(end) * config.slot_us;

  double successful_us = 0.0;
  double successful_channel_us = 0.0;
  for (int i = 0; i < n; ++i) {
    const double full = result.airtime_full[static_cast<std::size_t>(i)];
    const double narrow =
        result.airtime_narrow[static_cast<std::size_t>(i)];
    successful_us += full + narrow;
    const auto width =
        static_cast<double>(specs[static_cast<std::size_t>(i)]
                                .channel.occupied()
                                .size());
    successful_channel_us += full * width + narrow;
    result.station_share[static_cast<std::size_t>(i)] = full + narrow;
    result.airtime_full[static_cast<std::size_t>(i)] =
        full / result.elapsed_us;
    result.airtime_narrow[static_cast<std::size_t>(i)] =
        narrow / result.elapsed_us;
  }
  if (successful_us > 0.0) {
    for (double& share : result.station_share) share /= successful_us;
  }
  result.utilization =
      successful_channel_us /
      (result.elapsed_us * static_cast<double>(spanned_channels));
  result.collision_rate =
      static_cast<double>(result.collisions) /
      static_cast<double>(std::max<long long>(
          1, result.successes + result.collisions));
  return result;
}

}  // namespace acorn::mac
