#include "mac/dcf.hpp"

#include <algorithm>
#include <stdexcept>

namespace acorn::mac {

namespace {

struct Station {
  int backoff = 0;
  int cw = 15;
  int retries = 0;
};

int draw_backoff(util::Rng& rng, int cw) {
  return static_cast<int>(rng.uniform_int(0, cw));
}

}  // namespace

DcfResult simulate_dcf(const DcfConfig& config, int n_stations,
                       long long iterations, util::Rng& rng) {
  if (n_stations < 1 || iterations < 1) {
    throw std::invalid_argument("need stations >= 1 and iterations >= 1");
  }
  std::vector<Station> stations(static_cast<std::size_t>(n_stations));
  for (Station& s : stations) {
    s.cw = config.cw_min;
    s.backoff = draw_backoff(rng, s.cw);
  }

  DcfResult result;
  result.station_share.assign(static_cast<std::size_t>(n_stations), 0.0);
  long long events = 0;
  while (events < iterations) {
    // Advance to the next transmission: all stations count down idle
    // slots together; the minimum backoff decides who transmits.
    int min_backoff = stations[0].backoff;
    for (const Station& s : stations) {
      min_backoff = std::min(min_backoff, s.backoff);
    }
    result.elapsed_us +=
        config.difs_us + min_backoff * config.slot_us + config.frame_us;
    std::vector<int> transmitters;
    for (int i = 0; i < n_stations; ++i) {
      stations[static_cast<std::size_t>(i)].backoff -= min_backoff;
      if (stations[static_cast<std::size_t>(i)].backoff == 0) {
        transmitters.push_back(i);
      }
    }
    ++events;
    if (transmitters.size() == 1) {
      const int winner = transmitters.front();
      ++result.successes;
      result.station_share[static_cast<std::size_t>(winner)] +=
          config.frame_us;
      Station& s = stations[static_cast<std::size_t>(winner)];
      s.cw = config.cw_min;
      s.retries = 0;
      s.backoff = draw_backoff(rng, s.cw);
    } else {
      ++result.collisions;
      for (int i : transmitters) {
        Station& s = stations[static_cast<std::size_t>(i)];
        ++s.retries;
        if (s.retries > config.retry_limit) {
          s.cw = config.cw_min;
          s.retries = 0;
        } else {
          s.cw = std::min(2 * s.cw + 1, config.cw_max);
        }
        s.backoff = draw_backoff(rng, s.cw);
      }
    }
  }

  double successful_us = 0.0;
  for (double share_us : result.station_share) successful_us += share_us;
  if (successful_us > 0.0) {
    for (double& share : result.station_share) share /= successful_us;
  }
  result.utilization = successful_us / result.elapsed_us;
  result.collision_rate =
      static_cast<double>(result.collisions) /
      static_cast<double>(result.successes + result.collisions);
  return result;
}

}  // namespace acorn::mac
