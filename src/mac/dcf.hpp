// Slot-level DCF contention simulator: n saturated stations with binary
// exponential backoff competing for one channel. Used to *validate* the
// flow-level model's core assumption (paper §5.1): with |con_a|
// contending neighbors, an AP's medium share is M_a = 1/(|con_a|+1) "with
// very high accuracy when these APs can hear each other under saturated
// traffic". The simulator also exposes what the closed form ignores —
// collision and idle overhead.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace acorn::mac {

struct DcfConfig {
  int cw_min = 15;
  int cw_max = 1023;
  double slot_us = 9.0;
  double difs_us = 34.0;
  /// Medium time of one frame exchange (payload + preamble + SIFS + ACK).
  double frame_us = 300.0;
  /// Retry limit after which the frame is dropped and CW resets.
  int retry_limit = 7;
};

struct DcfResult {
  /// Fraction of *successful air time* owned by each station.
  std::vector<double> station_share;
  /// Collisions per transmission attempt.
  double collision_rate = 0.0;
  /// Fraction of wall time spent in successful transmissions.
  double utilization = 0.0;
  /// Total simulated time (us).
  double elapsed_us = 0.0;
  long long successes = 0;
  long long collisions = 0;
};

/// Simulate `n_stations` saturated stations for `iterations` transmission
/// opportunities (successes + collisions).
DcfResult simulate_dcf(const DcfConfig& config, int n_stations,
                       long long iterations, util::Rng& rng);

/// The flow-level model's share prediction for one of n stations.
inline double predicted_share(int n_stations) {
  return 1.0 / static_cast<double>(n_stations);
}

}  // namespace acorn::mac
