// Slot-level DCF contention simulator: n saturated stations with binary
// exponential backoff competing for one channel. Used to *validate* the
// flow-level model's core assumption (paper §5.1): with |con_a|
// contending neighbors, an AP's medium share is M_a = 1/(|con_a|+1) "with
// very high accuracy when these APs can hear each other under saturated
// traffic". The simulator also exposes what the closed form ignores —
// collision and idle overhead.
#pragma once

#include <vector>

#include "net/channels.hpp"
#include "util/rng.hpp"

namespace acorn::mac {

struct DcfConfig {
  int cw_min = 15;
  int cw_max = 1023;
  double slot_us = 9.0;
  double difs_us = 34.0;
  /// Medium time of one frame exchange (payload + preamble + SIFS + ACK).
  double frame_us = 300.0;
  /// Retry limit after which the frame is dropped and CW resets.
  int retry_limit = 7;
};

struct DcfResult {
  /// Fraction of *successful air time* owned by each station.
  std::vector<double> station_share;
  /// Collisions per transmission attempt.
  double collision_rate = 0.0;
  /// Fraction of wall time spent in successful transmissions.
  double utilization = 0.0;
  /// Total simulated time (us).
  double elapsed_us = 0.0;
  long long successes = 0;
  long long collisions = 0;
};

/// Simulate `n_stations` saturated stations for `iterations` transmission
/// opportunities (successes + collisions).
DcfResult simulate_dcf(const DcfConfig& config, int n_stations,
                       long long iterations, util::Rng& rng);

/// The flow-level model's share prediction for one of n stations.
inline double predicted_share(int n_stations) {
  return 1.0 / static_cast<double>(n_stations);
}

/// Per-transmission channel-width selection mode for the multi-channel
/// DCF below (Faridi/Bellalta, "Analysis of Dynamic Channel Bonding in
/// Dense Networks of WLANs"). Stations on a bonded channel pick a width
/// at every transmission opportunity:
///  - kStaticWidth: the paper's baseline — always transmit at the
///    allocated width; the backoff counts down only while the whole
///    bond has been idle for DIFS (the bond is the station's
///    carrier-sense domain).
///  - kAlwaysMax: transmit on the widest idle set containing the
///    primary — fall back to 20 MHz on the primary when the secondary
///    is busy.
///  - kProbabilistic: when the secondary is idle, bond with probability
///    `wide_probability`, else transmit 20 MHz on the primary.
/// Stations on basic channels ignore the mode.
enum class WidthMode {
  kStaticWidth,
  kAlwaysMax,
  kProbabilistic,
};

/// One contender in the multi-channel simulation: the channel it was
/// allocated (basic or bonded) plus its per-transmission width policy.
struct MultiDcfStation {
  net::Channel channel = net::Channel::basic(0);
  WidthMode mode = WidthMode::kStaticWidth;
  /// Bonding probability for kProbabilistic (ignored otherwise).
  double wide_probability = 0.5;
};

struct MultiDcfResult {
  /// Fraction of *wall time* each station spends in successful
  /// full-width (allocated-width) transmissions.
  std::vector<double> airtime_full;
  /// Fraction of wall time in successful narrow (primary-half 20 MHz)
  /// transmissions. Zero for stations on basic channels.
  std::vector<double> airtime_narrow;
  /// Fraction of *successful air time* owned by each station (full +
  /// narrow), comparable to DcfResult::station_share.
  std::vector<double> station_share;
  /// Collisions per transmission attempt.
  double collision_rate = 0.0;
  /// Successful channel-time over elapsed time x spanned basic
  /// channels: how much of the usable spectrum carried data.
  double utilization = 0.0;
  double elapsed_us = 0.0;
  long long successes = 0;
  long long collisions = 0;
};

/// Slot-level multi-channel DCF: each station runs binary exponential
/// backoff over its carrier-sense domain (the whole allocated channel
/// for basic/static stations; the primary 20 MHz half for DCB
/// stations, which check the secondary only at the moment the counter
/// fires — the standard PIFS-style secondary check). Stations whose
/// chosen channel sets overlap in the same slot collide (one collision
/// event per connected overlap component). This is the ground truth
/// the distilled per-cell DCB shares in `dcb::distill_shares` are
/// validated against.
MultiDcfResult simulate_dcf_multichannel(
    const DcfConfig& config, const std::vector<MultiDcfStation>& stations,
    long long iterations, util::Rng& rng);

}  // namespace acorn::mac
