#include "mac/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace acorn::mac {

double residual_loss(const TrafficModel& model, double per) {
  if (per < 0.0 || per > 1.0) throw std::invalid_argument("PER out of [0,1]");
  return std::pow(per, model.retry_limit + 1);
}

double mathis_cap_bps(const TrafficModel& model, double q) {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("loss out of [0,1]");
  if (q == 0.0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(model.mss_bits) /
         (model.rtt_s * std::sqrt(2.0 * q / 3.0));
}

double transport_goodput_bps(const TrafficModel& model, TrafficType type,
                             double mac_bps, double per) {
  if (mac_bps < 0.0) throw std::invalid_argument("negative mac_bps");
  switch (type) {
    case TrafficType::kUdp:
      return model.udp_efficiency * mac_bps;
    case TrafficType::kTcp: {
      const double q = residual_loss(model, per);
      const double window_factor =
          std::pow(1.0 - per, model.tcp_loss_sensitivity);
      return std::min(model.tcp_efficiency * window_factor * mac_bps,
                      mathis_cap_bps(model, q));
    }
  }
  throw std::logic_error("unknown traffic type");
}

}  // namespace acorn::mac
