// The 802.11 performance anomaly (Heusse et al., the paper's ref [4])
// at cell level: DCF gives every client equal long-term transmission
// opportunities, so a slow client inflates everyone's share of medium
// time and the whole cell's throughput collapses toward the slow link.
//
// The quantities here are exactly the ones ACORN's modified beacons carry
// (paper §4.1): per-client delays d_cl, the aggregate transmission delay
// ATD, the channel access share M, and the per-client throughput M/ATD.
#pragma once

#include <span>
#include <vector>

#include "mac/airtime.hpp"

namespace acorn::mac {

/// A client as seen by its serving AP.
struct CellClient {
  int client_id = 0;
  /// PHY rate the auto-rate picked for this client (bits/s).
  double rate_bps = 0.0;
  /// PER at that rate.
  double per = 0.0;
};

struct CellThroughput {
  /// Aggregate transmission delay: sum of per-client d_u (s/bit).
  double atd_s_per_bit = 0.0;
  /// Per-client throughput X = M / ATD (bits/s) — equal across clients
  /// under the anomaly.
  double per_client_bps = 0.0;
  /// Cell throughput K * M / ATD (bits/s).
  double cell_bps = 0.0;
  /// Per-client delays in the beacon's order (s/bit).
  std::vector<double> client_delay_s_per_bit;
};

/// Evaluate a cell of `clients` that owns a fraction `medium_share` of
/// the medium (M_a = 1/(|con_a|+1) under saturation). An empty cell
/// yields all-zero throughput.
CellThroughput anomaly_throughput(const MacTiming& timing,
                                  std::span<const CellClient> clients,
                                  double medium_share, int payload_bits);

}  // namespace acorn::mac
