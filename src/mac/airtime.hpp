// 802.11n frame airtime accounting: how long one downlink frame exchange
// occupies the medium at a given PHY rate, and the expected medium time
// per successfully delivered payload bit once losses and retries are
// included. This is the "transmission delay per client" (d_cl) that
// ACORN's modified beacons carry (paper §4.1, §5.1).
#pragma once

namespace acorn::mac {

struct MacTiming {
  double slot_us = 9.0;
  double sifs_us = 16.0;
  double difs_us = 34.0;
  /// 802.11n mixed-format PLCP preamble + header.
  double preamble_us = 36.0;
  /// Block-ACK response at a basic rate.
  double ack_us = 44.0;
  /// Average DCF backoff: CWmin/2 slots.
  double mean_backoff_slots = 7.5;
  /// PER ceiling used to keep delays finite for starving links; a link at
  /// the cap is effectively unable to communicate (paper Fig. 10 Topo 1).
  double per_cap = 0.999;
  /// A-MPDU aggregation: MPDUs per aggregate. 1 = no aggregation (the
  /// paper's experiments); larger values amortize DIFS/backoff/preamble
  /// over the aggregate, with per-MPDU loss recovered selectively via
  /// block ACK.
  int ampdu_frames = 1;
};

/// Medium time (seconds) of one transmission attempt of `payload_bits`
/// at PHY rate `rate_bps`, including DIFS, mean backoff, preamble and ACK.
double frame_airtime_s(const MacTiming& timing, double rate_bps,
                       int payload_bits);

/// Expected number of transmission attempts per delivered frame with
/// unbounded retries, 1 / (1 - PER), with PER capped at timing.per_cap.
double expected_attempts(const MacTiming& timing, double per);

/// Expected medium time per successfully delivered payload bit:
///   d = airtime(rate, L) * E[attempts] / L    (seconds per bit).
/// This is what aggregates into the beacon's ATD.
double per_bit_delay_s(const MacTiming& timing, double rate_bps,
                       int payload_bits, double per);

}  // namespace acorn::mac
