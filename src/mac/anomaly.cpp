#include "mac/anomaly.hpp"

#include <stdexcept>

namespace acorn::mac {

CellThroughput anomaly_throughput(const MacTiming& timing,
                                  std::span<const CellClient> clients,
                                  double medium_share, int payload_bits) {
  if (medium_share <= 0.0 || medium_share > 1.0) {
    throw std::invalid_argument("medium_share out of (0,1]");
  }
  CellThroughput out;
  if (clients.empty()) return out;
  for (const CellClient& c : clients) {
    const double d = per_bit_delay_s(timing, c.rate_bps, payload_bits, c.per);
    out.client_delay_s_per_bit.push_back(d);
    out.atd_s_per_bit += d;
  }
  out.per_client_bps = medium_share / out.atd_s_per_bit;
  out.cell_bps = static_cast<double>(clients.size()) * out.per_client_bps;
  return out;
}

}  // namespace acorn::mac
