#include "mac/airtime.hpp"

#include <algorithm>
#include <stdexcept>

namespace acorn::mac {

double frame_airtime_s(const MacTiming& timing, double rate_bps,
                       int payload_bits) {
  if (rate_bps <= 0.0) throw std::invalid_argument("rate_bps <= 0");
  if (payload_bits <= 0) throw std::invalid_argument("payload_bits <= 0");
  if (timing.ampdu_frames < 1) {
    throw std::invalid_argument("ampdu_frames < 1");
  }
  // With A-MPDU, one channel access carries `ampdu_frames` MPDUs; the
  // per-MPDU share of the fixed overhead shrinks accordingly.
  const double overhead_us = timing.difs_us +
                             timing.mean_backoff_slots * timing.slot_us +
                             timing.preamble_us + timing.sifs_us +
                             timing.ack_us;
  const double payload_s = static_cast<double>(payload_bits) / rate_bps;
  return overhead_us * 1e-6 / timing.ampdu_frames + payload_s;
}

double expected_attempts(const MacTiming& timing, double per) {
  if (per < 0.0 || per > 1.0) throw std::invalid_argument("PER out of [0,1]");
  const double p = std::min(per, timing.per_cap);
  return 1.0 / (1.0 - p);
}

double per_bit_delay_s(const MacTiming& timing, double rate_bps,
                       int payload_bits, double per) {
  return frame_airtime_s(timing, rate_bps, payload_bits) *
         expected_attempts(timing, per) / static_cast<double>(payload_bits);
}

}  // namespace acorn::mac
