#include "baseband/ofdm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace acorn::baseband {

namespace {

// Logical subcarrier index (-N/2 .. N/2-1) to FFT bin (0 .. N-1).
int to_bin(int k, int n) { return k >= 0 ? k : k + n; }

// 802.11n 20 MHz: subcarriers -28..28 used, pilots at +/-7 and +/-21,
// DC unused -> 52 data + 4 pilots.
void build_20mhz(std::vector<int>& data, std::vector<int>& pilots) {
  const int n = 64;
  for (int k = -28; k <= 28; ++k) {
    if (k == 0) continue;
    const bool pilot = (k == 7 || k == -7 || k == 21 || k == -21);
    (pilot ? pilots : data).push_back(to_bin(k, n));
  }
}

// 802.11n 40 MHz: subcarriers -58..58 used except -1, 0, +1; pilots at
// +/-11, +/-25, +/-53 -> 108 data + 6 pilots.
void build_40mhz(std::vector<int>& data, std::vector<int>& pilots) {
  const int n = 128;
  for (int k = -58; k <= 58; ++k) {
    if (k >= -1 && k <= 1) continue;
    const bool pilot =
        (k == 11 || k == -11 || k == 25 || k == -25 || k == 53 || k == -53);
    (pilot ? pilots : data).push_back(to_bin(k, n));
  }
}

}  // namespace

Ofdm::Ofdm(phy::ChannelWidth width)
    : width_(width), fft_size_(width == phy::ChannelWidth::k20MHz ? 64 : 128) {
  if (width == phy::ChannelWidth::k20MHz) {
    build_20mhz(data_bins_, pilot_bins_);
  } else {
    build_40mhz(data_bins_, pilot_bins_);
  }
  // Sanity: these counts are what the paper quotes (52 / 108).
  const int expected = phy::data_subcarriers(width);
  if (num_data_subcarriers() != expected) {
    throw std::logic_error("subcarrier map does not match 802.11n");
  }
}

double Ofdm::sample_rate_hz() const { return phy::width_hz(width_); }

std::size_t Ofdm::num_ofdm_symbols(std::size_t n) const {
  const auto per_symbol = static_cast<std::size_t>(num_data_subcarriers());
  return (n + per_symbol - 1) / per_symbol;
}

double Ofdm::subcarrier_amplitude(double tx_power_mw) const {
  if (tx_power_mw <= 0.0) throw std::invalid_argument("tx_power_mw <= 0");
  // Average time-sample power of an IFFT frame with N_used unit-amplitude
  // carriers is N_used / N^2 per unit subcarrier energy; solve for the
  // amplitude that yields `tx_power_mw`.
  const double n = fft_size_;
  const double used = num_data_subcarriers() + num_pilot_subcarriers();
  return std::sqrt(tx_power_mw * n * n / used);
}

std::vector<Cx> Ofdm::modulate(std::span<const Cx> data_symbols,
                               double tx_power_mw) const {
  const double amp = subcarrier_amplitude(tx_power_mw);
  const std::size_t n_sym = num_ofdm_symbols(data_symbols.size());
  const auto n = static_cast<std::size_t>(fft_size_);
  std::vector<Cx> out;
  out.reserve(n_sym * static_cast<std::size_t>(symbol_length()));
  std::vector<Cx> grid(n);
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < n_sym; ++s) {
    std::fill(grid.begin(), grid.end(), Cx{});
    for (int bin : data_bins_) {
      const Cx sym = cursor < data_symbols.size() ? data_symbols[cursor] : Cx{};
      grid[static_cast<std::size_t>(bin)] = amp * sym;
      ++cursor;
    }
    for (int bin : pilot_bins_) {
      grid[static_cast<std::size_t>(bin)] = Cx(amp, 0.0);
    }
    std::vector<Cx> time = ifft(grid);
    // Cyclic prefix: last cp samples repeated in front.
    const auto cp = static_cast<std::size_t>(cp_length());
    out.insert(out.end(), time.end() - static_cast<std::ptrdiff_t>(cp),
               time.end());
    out.insert(out.end(), time.begin(), time.end());
  }
  return out;
}

std::vector<std::vector<Cx>> Ofdm::extract_bins(
    std::span<const Cx> rx_samples, std::size_t n_ofdm_symbols) const {
  const auto slen = static_cast<std::size_t>(symbol_length());
  if (rx_samples.size() < n_ofdm_symbols * slen) {
    throw std::invalid_argument("rx waveform shorter than expected");
  }
  std::vector<std::vector<Cx>> out(n_ofdm_symbols);
  std::vector<Cx> time(static_cast<std::size_t>(fft_size_));
  for (std::size_t s = 0; s < n_ofdm_symbols; ++s) {
    const std::size_t base = s * slen + static_cast<std::size_t>(cp_length());
    std::copy_n(rx_samples.begin() + static_cast<std::ptrdiff_t>(base),
                time.size(), time.begin());
    fft_in_place(time);
    out[s].reserve(data_bins_.size());
    for (int bin : data_bins_) {
      out[s].push_back(time[static_cast<std::size_t>(bin)]);
    }
  }
  return out;
}

std::vector<Cx> Ofdm::demodulate(std::span<const Cx> rx_samples,
                                 std::span<const Cx> channel_freq,
                                 std::size_t n_data_symbols,
                                 double tx_power_mw) const {
  if (channel_freq.size() != static_cast<std::size_t>(fft_size_)) {
    throw std::invalid_argument("channel response size != FFT size");
  }
  const double amp = subcarrier_amplitude(tx_power_mw);
  const std::size_t n_sym = num_ofdm_symbols(n_data_symbols);
  const auto slen = static_cast<std::size_t>(symbol_length());
  if (rx_samples.size() < n_sym * slen) {
    throw std::invalid_argument("rx waveform shorter than expected");
  }
  std::vector<Cx> data;
  data.reserve(n_data_symbols);
  std::vector<Cx> time(static_cast<std::size_t>(fft_size_));
  for (std::size_t s = 0; s < n_sym && data.size() < n_data_symbols; ++s) {
    const std::size_t base = s * slen + static_cast<std::size_t>(cp_length());
    std::copy_n(rx_samples.begin() + static_cast<std::ptrdiff_t>(base),
                time.size(), time.begin());
    fft_in_place(time);
    for (int bin : data_bins_) {
      if (data.size() >= n_data_symbols) break;
      const Cx h = channel_freq[static_cast<std::size_t>(bin)];
      const Cx eq = std::abs(h) > 1e-12
                        ? time[static_cast<std::size_t>(bin)] / h
                        : time[static_cast<std::size_t>(bin)];
      data.push_back(eq / amp);
    }
  }
  return data;
}

}  // namespace acorn::baseband
