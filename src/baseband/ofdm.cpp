#include "baseband/ofdm.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace acorn::baseband {

namespace {

// Logical subcarrier index (-N/2 .. N/2-1) to FFT bin (0 .. N-1).
int to_bin(int k, int n) { return k >= 0 ? k : k + n; }

// 802.11n 20 MHz: subcarriers -28..28 used, pilots at +/-7 and +/-21,
// DC unused -> 52 data + 4 pilots.
void build_20mhz(std::vector<int>& data, std::vector<int>& pilots) {
  const int n = 64;
  for (int k = -28; k <= 28; ++k) {
    if (k == 0) continue;
    const bool pilot = (k == 7 || k == -7 || k == 21 || k == -21);
    (pilot ? pilots : data).push_back(to_bin(k, n));
  }
}

// 802.11n 40 MHz: subcarriers -58..58 used except -1, 0, +1; pilots at
// +/-11, +/-25, +/-53 -> 108 data + 6 pilots.
void build_40mhz(std::vector<int>& data, std::vector<int>& pilots) {
  const int n = 128;
  for (int k = -58; k <= 58; ++k) {
    if (k >= -1 && k <= 1) continue;
    const bool pilot =
        (k == 11 || k == -11 || k == 25 || k == -25 || k == 53 || k == -53);
    (pilot ? pilots : data).push_back(to_bin(k, n));
  }
}

}  // namespace

Ofdm::Ofdm(phy::ChannelWidth width)
    : width_(width), fft_size_(width == phy::ChannelWidth::k20MHz ? 64 : 128) {
  if (width == phy::ChannelWidth::k20MHz) {
    build_20mhz(data_bins_, pilot_bins_);
  } else {
    build_40mhz(data_bins_, pilot_bins_);
  }
  // Sanity: these counts are what the paper quotes (52 / 108).
  const int expected = phy::data_subcarriers(width);
  if (num_data_subcarriers() != expected) {
    throw std::logic_error("subcarrier map does not match 802.11n");
  }
}

double Ofdm::sample_rate_hz() const { return phy::width_hz(width_); }

std::size_t Ofdm::num_ofdm_symbols(std::size_t n) const {
  const auto per_symbol = static_cast<std::size_t>(num_data_subcarriers());
  return (n + per_symbol - 1) / per_symbol;
}

double Ofdm::subcarrier_amplitude(double tx_power_mw) const {
  if (tx_power_mw <= 0.0) throw std::invalid_argument("tx_power_mw <= 0");
  // Average time-sample power of an IFFT frame with N_used unit-amplitude
  // carriers is N_used / N^2 per unit subcarrier energy; solve for the
  // amplitude that yields `tx_power_mw`.
  const double n = fft_size_;
  const double used = num_data_subcarriers() + num_pilot_subcarriers();
  return std::sqrt(tx_power_mw * n * n / used);
}

void Ofdm::modulate_into(std::span<const Cx> data_symbols,
                         double tx_power_mw, std::span<Cx> out) const {
  const double amp = subcarrier_amplitude(tx_power_mw);
  const std::size_t n_sym = num_ofdm_symbols(data_symbols.size());
  const auto n = static_cast<std::size_t>(fft_size_);
  const auto cp = static_cast<std::size_t>(cp_length());
  const auto slen = static_cast<std::size_t>(symbol_length());
  if (out.size() != n_sym * slen) {
    throw std::invalid_argument("output size must be n_sym * symbol_length");
  }
  const FftPlan& plan = fft_plan(n);
  const int* const bins = data_bins_.data();
  const std::size_t nd = data_bins_.size();
  const double* const sym =
      reinterpret_cast<const double*>(data_symbols.data());
  const std::size_t n_data = data_symbols.size();
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < n_sym; ++s) {
    // Build the subcarrier grid directly in the post-CP segment of the
    // output, run the IFFT in place, then copy the cyclic prefix. The
    // scatter works on flat double pairs — std::complex stores keep the
    // compiler from tightening the loop.
    const std::span<Cx> grid = out.subspan(s * slen + cp, n);
    std::fill(grid.begin(), grid.end(), Cx{});
    double* const g = reinterpret_cast<double*>(grid.data());
    const std::size_t take = std::min(nd, n_data - std::min(n_data, cursor));
    for (std::size_t d = 0; d < take; ++d) {
      const std::size_t gi = 2 * static_cast<std::size_t>(bins[d]);
      g[gi] = amp * sym[2 * (cursor + d)];
      g[gi + 1] = amp * sym[2 * (cursor + d) + 1];
    }
    cursor += nd;
    for (int bin : pilot_bins_) {
      grid[static_cast<std::size_t>(bin)] = Cx(amp, 0.0);
    }
    plan.inverse(grid);
    std::copy_n(grid.end() - static_cast<std::ptrdiff_t>(cp), cp,
                out.begin() + static_cast<std::ptrdiff_t>(s * slen));
  }
}

std::vector<Cx> Ofdm::modulate(std::span<const Cx> data_symbols,
                               double tx_power_mw) const {
  std::vector<Cx> out(num_ofdm_symbols(data_symbols.size()) *
                      static_cast<std::size_t>(symbol_length()));
  modulate_into(data_symbols, tx_power_mw, out);
  return out;
}

void Ofdm::extract_bins_into(std::span<const Cx> rx_samples,
                             std::size_t n_ofdm_symbols, std::span<Cx> out,
                             std::span<Cx> time_scratch) const {
  const auto slen = static_cast<std::size_t>(symbol_length());
  const auto nd = data_bins_.size();
  if (rx_samples.size() < n_ofdm_symbols * slen) {
    throw std::invalid_argument("rx waveform shorter than expected");
  }
  if (out.size() != n_ofdm_symbols * nd) {
    throw std::invalid_argument("output size must be n_sym * data carriers");
  }
  if (time_scratch.size() != static_cast<std::size_t>(fft_size_)) {
    throw std::invalid_argument("scratch size must equal the FFT size");
  }
  const FftPlan& plan = fft_plan(time_scratch.size());
  const int* const bins = data_bins_.data();
  const double* const t = reinterpret_cast<const double*>(time_scratch.data());
  double* const o = reinterpret_cast<double*>(out.data());
  for (std::size_t s = 0; s < n_ofdm_symbols; ++s) {
    const std::size_t base = s * slen + static_cast<std::size_t>(cp_length());
    std::copy_n(rx_samples.begin() + static_cast<std::ptrdiff_t>(base),
                time_scratch.size(), time_scratch.begin());
    plan.forward(time_scratch);
    for (std::size_t d = 0; d < nd; ++d) {
      const std::size_t bi = 2 * static_cast<std::size_t>(bins[d]);
      o[2 * (s * nd + d)] = t[bi];
      o[2 * (s * nd + d) + 1] = t[bi + 1];
    }
  }
}

std::vector<Cx> Ofdm::extract_bins(std::span<const Cx> rx_samples,
                                   std::size_t n_ofdm_symbols) const {
  std::vector<Cx> out(n_ofdm_symbols * data_bins_.size());
  std::vector<Cx> time(static_cast<std::size_t>(fft_size_));
  extract_bins_into(rx_samples, n_ofdm_symbols, out, time);
  return out;
}

void Ofdm::demodulate_into(std::span<const Cx> rx_samples,
                           std::span<const Cx> channel_freq,
                           std::span<Cx> data, double tx_power_mw,
                           std::span<Cx> time_scratch) const {
  if (channel_freq.size() != static_cast<std::size_t>(fft_size_)) {
    throw std::invalid_argument("channel response size != FFT size");
  }
  if (time_scratch.size() != static_cast<std::size_t>(fft_size_)) {
    throw std::invalid_argument("scratch size must equal the FFT size");
  }
  const double amp = subcarrier_amplitude(tx_power_mw);
  const double inv_amp = 1.0 / amp;
  const std::size_t n_data_symbols = data.size();
  const std::size_t n_sym = num_ofdm_symbols(n_data_symbols);
  const auto slen = static_cast<std::size_t>(symbol_length());
  if (rx_samples.size() < n_sym * slen) {
    throw std::invalid_argument("rx waveform shorter than expected");
  }
  const FftPlan& plan = fft_plan(time_scratch.size());
  // The channel is constant across the packet (block fading), so the
  // per-bin equalizer tap 1/(amp * H_k) is computed once; every symbol
  // then costs one complex multiply per bin instead of a division. Taps
  // are split into real/imag double arrays and the gather loop works on
  // flat double pairs: 16-byte std::complex loads/stores cost ~6x here.
  std::array<double, 128> tap_re;  // fft_size_ is 64 or 128
  std::array<double, 128> tap_im;
  const auto nd = data_bins_.size();
  for (std::size_t d = 0; d < nd; ++d) {
    const Cx h = channel_freq[static_cast<std::size_t>(data_bins_[d])];
    const Cx w = std::norm(h) > 1e-24 ? inv_amp / h : Cx(inv_amp, 0.0);
    tap_re[d] = w.real();
    tap_im[d] = w.imag();
  }
  std::size_t cursor = 0;
  const int* const bins = data_bins_.data();
  const double* const t = reinterpret_cast<const double*>(time_scratch.data());
  const Cx* const rx = rx_samples.data();
  double* const out = reinterpret_cast<double*>(data.data());
  for (std::size_t s = 0; s < n_sym && cursor < n_data_symbols; ++s) {
    const std::size_t base = s * slen + static_cast<std::size_t>(cp_length());
    std::copy_n(rx + base, time_scratch.size(), time_scratch.begin());
    plan.forward(time_scratch);
    const std::size_t take = std::min(nd, n_data_symbols - cursor);
    double* const o = out + 2 * cursor;
    for (std::size_t d = 0; d < take; ++d) {
      const std::size_t bi = 2 * static_cast<std::size_t>(bins[d]);
      const double xr = t[bi];
      const double xi = t[bi + 1];
      const double wr = tap_re[d];
      const double wi = tap_im[d];
      o[2 * d] = xr * wr - xi * wi;
      o[2 * d + 1] = xr * wi + xi * wr;
    }
    cursor += take;
  }
}

std::vector<Cx> Ofdm::demodulate(std::span<const Cx> rx_samples,
                                 std::span<const Cx> channel_freq,
                                 std::size_t n_data_symbols,
                                 double tx_power_mw) const {
  std::vector<Cx> data(n_data_symbols);
  std::vector<Cx> time(static_cast<std::size_t>(fft_size_));
  demodulate_into(rx_samples, channel_freq, data, tx_power_mw, time);
  return data;
}

}  // namespace acorn::baseband
