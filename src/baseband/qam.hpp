// Gray-coded square QAM mapping for the coded PHY chain: BPSK, QPSK,
// 16-QAM and 64-QAM with the 802.11 normalization factors (unit average
// symbol energy).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baseband/fft.hpp"
#include "phy/modulation.hpp"

namespace acorn::baseband {

/// Map a bitstream to constellation symbols. The trailing partial symbol
/// (if any) is zero-padded.
std::vector<Cx> qam_modulate(std::span<const std::uint8_t> bits,
                             phy::Modulation mod);

/// Hard-decision demap; always returns a multiple of bits_per_symbol.
std::vector<std::uint8_t> qam_demodulate(std::span<const Cx> symbols,
                                         phy::Modulation mod);

/// Soft demap: per-bit log-likelihood ratios, positive when bit 0 is
/// more likely — the max-log approximation
///   LLR_b = (min_{s: b=1} |y-s|^2 - min_{s: b=0} |y-s|^2) / sigma^2.
/// `noise_vars` gives each symbol's post-equalization noise variance
/// (one entry per symbol; equalization divides by H so the variance
/// varies per subcarrier).
std::vector<double> qam_soft_demodulate(std::span<const Cx> symbols,
                                        phy::Modulation mod,
                                        std::span<const double> noise_vars);

/// Allocation-free variants. Sizes: `symbols.size()` must be
/// ceil(bits.size() / k) for modulation (trailing partial symbol
/// zero-padded), `bits.size()`/`llrs.size()` must be
/// `symbols.size() * k` for the demappers, with k = bits_per_symbol(mod).
void qam_modulate_into(std::span<const std::uint8_t> bits,
                       phy::Modulation mod, std::span<Cx> symbols);
void qam_demodulate_into(std::span<const Cx> symbols, phy::Modulation mod,
                         std::span<std::uint8_t> bits);
void qam_soft_demodulate_into(std::span<const Cx> symbols,
                              phy::Modulation mod,
                              std::span<const double> noise_vars,
                              std::span<double> llrs);

/// Map one symbol from `bits_per_symbol(mod)` bits.
Cx qam_map_symbol(std::span<const std::uint8_t> bits, phy::Modulation mod);

/// Demap one symbol into `out` (`bits_per_symbol(mod)` entries).
void qam_demap_symbol(Cx symbol, phy::Modulation mod,
                      std::span<std::uint8_t> out);

}  // namespace acorn::baseband
