#include "baseband/phy_chain.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baseband/convolutional.hpp"
#include "baseband/engine.hpp"
#include "baseband/interleaver.hpp"
#include "baseband/ofdm.hpp"
#include "baseband/qam.hpp"
#include "baseband/scrambler.hpp"
#include "util/units.hpp"

namespace acorn::baseband {

namespace {

ChannelConfig channel_config(const PhyChainConfig& cfg) {
  ChannelConfig ch;
  ch.sample_rate_hz = phy::width_hz(cfg.width);
  ch.noise_psd_dbm_per_hz = cfg.noise_psd_dbm_per_hz;
  ch.noise_figure_db = cfg.noise_figure_db;
  ch.path_loss_db = cfg.path_loss_db;
  ch.num_taps = cfg.num_taps;
  ch.rayleigh = cfg.rayleigh;
  return ch;
}

const phy::McsEntry& entry_for(const PhyChainConfig& cfg) {
  if (cfg.mcs_index < 0 || cfg.mcs_index > phy::kMaxSingleStreamMcs) {
    throw std::invalid_argument("coded chain supports MCS 0-7 only");
  }
  return phy::mcs(cfg.mcs_index);
}

// All the intermediate buffers of one coded roundtrip, sized once for a
// payload length so the per-packet loop is allocation-free. The zero
// padding that fills the last OFDM symbol is written at construction and
// never overwritten (puncture_into only touches the punctured prefix).
struct ChainWorkspace {
  ChainWorkspace(std::size_t n_bits, const phy::McsEntry& entry,
                 const Ofdm& ofdm, const BlockInterleaver& interleaver,
                 int num_taps) {
    coded_len = ConvolutionalCode::encoded_length(n_bits);
    punctured_len = punctured_length(coded_len, entry.code_rate);
    const auto n_cbps = static_cast<std::size_t>(interleaver.block_size());
    const std::size_t n_symbols = (punctured_len + n_cbps - 1) / n_cbps;
    const std::size_t padded = n_symbols * n_cbps;
    const auto k = static_cast<std::size_t>(
        phy::bits_per_symbol(entry.modulation));
    const std::size_t n_qam = padded / k;
    const std::size_t n_ofdm = ofdm.num_ofdm_symbols(n_qam);
    const auto slen = static_cast<std::size_t>(ofdm.symbol_length());
    const auto fft = static_cast<std::size_t>(ofdm.fft_size());

    scrambled.resize(n_bits);
    coded.resize(coded_len);
    tx_bits.assign(padded, 0);  // pad bits beyond punctured_len stay zero
    inter.resize(padded);
    symbols.resize(n_qam);
    tx.resize(n_ofdm * slen);
    rx.resize(n_ofdm * slen + static_cast<std::size_t>(num_taps) - 1);
    h.resize(fft);
    eq.resize(n_qam);
    scratch.resize(fft);
    rx_bits.resize(padded);
    deinter.resize(padded);
    depunct.resize(coded_len);
    noise_vars.resize(n_qam);
    llrs.resize(padded);
    deinter_llrs.resize(padded);
    depunct_soft.resize(coded_len);
    viterbi.reserve(coded_len / 2);
  }

  std::size_t coded_len = 0;
  std::size_t punctured_len = 0;
  std::vector<std::uint8_t> scrambled;
  std::vector<std::uint8_t> coded;
  std::vector<std::uint8_t> tx_bits;  // punctured + zero pad
  std::vector<std::uint8_t> inter;
  std::vector<Cx> symbols;
  std::vector<Cx> tx;
  std::vector<Cx> rx;
  std::vector<Cx> h;
  std::vector<Cx> eq;
  std::vector<Cx> scratch;
  std::vector<std::uint8_t> rx_bits;
  std::vector<std::uint8_t> deinter;
  std::vector<std::uint8_t> depunct;
  std::vector<double> noise_vars;
  std::vector<double> llrs;
  std::vector<double> deinter_llrs;
  std::vector<double> depunct_soft;
  ViterbiWorkspace viterbi;
};

// One packet through the chain. `decoded.size()` must equal `bits.size()`
// and the workspace must have been sized for that payload length. Leaves
// the genie CSI for this packet's fading realization in `ws.h`.
void roundtrip_into(const PhyChainConfig& config,
                    const phy::McsEntry& entry, const Ofdm& ofdm,
                    const BlockInterleaver& interleaver,
                    const ConvolutionalCode& code, ChainWorkspace& ws,
                    std::span<const std::uint8_t> bits,
                    FadingChannel& channel, util::Rng& rng,
                    std::span<std::uint8_t> decoded) {
  const double tx_mw = util::dbm_to_mw(config.tx_dbm);

  // Scramble, encode (rate 1/2 with tail) and puncture to the MCS rate;
  // the tail of tx_bits holds the zero padding to a whole OFDM symbol.
  Scrambler scrambler;
  scrambler.process_into(bits, ws.scrambled);
  code.encode_into(ws.scrambled, ws.coded);
  puncture_into(ws.coded, entry.code_rate,
                std::span(ws.tx_bits).first(ws.punctured_len));

  interleaver.interleave_stream_into(ws.tx_bits, ws.inter);
  qam_modulate_into(ws.inter, entry.modulation, ws.symbols);
  ofdm.modulate_into(ws.symbols, tx_mw, ws.tx);
  channel.transmit_into(ws.tx, ws.rx, rng);
  channel.frequency_response_into(ws.h);
  ofdm.demodulate_into(ws.rx, ws.h, ws.eq, tx_mw, ws.scratch);

  if (config.soft_decision) {
    // Post-equalization noise variance per symbol: dividing bin k by H_k
    // scales the FFT-domain noise (N * sigma^2) by 1/(amp^2 |H_k|^2).
    const double amp = ofdm.subcarrier_amplitude(tx_mw);
    const double post_fft_noise =
        channel.noise_variance_mw() * ofdm.fft_size();
    const auto data_bins = ofdm.data_bins();
    const auto nd = static_cast<std::size_t>(ofdm.num_data_subcarriers());
    // Subcarrier position via a wrap-around counter: `i % nd` costs an
    // integer divide per QAM symbol.
    std::size_t d = 0;
    for (std::size_t i = 0; i < ws.eq.size(); ++i) {
      const auto bin = static_cast<std::size_t>(data_bins[d]);
      if (++d == nd) d = 0;
      const double h2 = std::max(std::norm(ws.h[bin]), 1e-12);
      ws.noise_vars[i] = post_fft_noise / (amp * amp * h2);
    }
    qam_soft_demodulate_into(ws.eq, entry.modulation, ws.noise_vars,
                             ws.llrs);
    interleaver.deinterleave_stream_into(std::span<const double>(ws.llrs),
                                         ws.deinter_llrs);
    depuncture_soft_into(
        std::span<const double>(ws.deinter_llrs).first(ws.punctured_len),
        entry.code_rate, ws.depunct_soft);
    code.decode_soft_into(ws.depunct_soft, decoded, ws.viterbi);
  } else {
    qam_demodulate_into(ws.eq, entry.modulation, ws.rx_bits);
    interleaver.deinterleave_stream_into(ws.rx_bits, ws.deinter);
    depuncture_into(std::span<const std::uint8_t>(ws.deinter)
                        .first(ws.punctured_len),
                    entry.code_rate, ws.depunct);
    code.decode_into(ws.depunct, decoded, ws.viterbi);
  }
  scrambler.reset(0x5D);
  scrambler.process_into(decoded, decoded);  // descramble in place
}

// Per-worker state for the packet sweep.
struct ChainCtx {
  ChainCtx(const PhyChainConfig& cfg, const phy::McsEntry& entry,
           const Ofdm& ofdm, const BlockInterleaver& interleaver)
      : ws(static_cast<std::size_t>(cfg.packet_bytes) * 8, entry, ofdm,
           interleaver, cfg.num_taps),
        channel([&] {
          util::Rng scratch_rng(0);
          return FadingChannel(channel_config(cfg), scratch_rng);
        }()) {
    bits.resize(static_cast<std::size_t>(cfg.packet_bytes) * 8);
    decoded.resize(bits.size());
  }

  ChainWorkspace ws;
  FadingChannel channel;
  std::vector<std::uint8_t> bits;
  std::vector<std::uint8_t> decoded;
};

}  // namespace

std::vector<std::uint8_t> phy_chain_roundtrip(
    const PhyChainConfig& config, std::span<const std::uint8_t> bits,
    FadingChannel& channel, util::Rng& rng) {
  const phy::McsEntry& entry = entry_for(config);
  const Ofdm ofdm(config.width);
  const BlockInterleaver interleaver =
      BlockInterleaver::for_ht(config.width, entry.modulation);
  const ConvolutionalCode code;
  ChainWorkspace ws(bits.size(), entry, ofdm, interleaver,
                    channel.config().num_taps);
  std::vector<std::uint8_t> decoded(bits.size());
  roundtrip_into(config, entry, ofdm, interleaver, code, ws, bits, channel,
                 rng, decoded);
  return decoded;
}

PhyChainResult run_phy_chain(const PhyChainConfig& config, int packets,
                             util::Rng& rng) {
  if (packets <= 0 || config.packet_bytes <= 0) {
    throw std::invalid_argument("packets and packet_bytes must be positive");
  }
  const phy::McsEntry& entry = entry_for(config);
  const Ofdm ofdm(config.width);
  const BlockInterleaver interleaver =
      BlockInterleaver::for_ht(config.width, entry.modulation);
  const ConvolutionalCode code;

  // Same determinism scheme as run_bermac: one seed draw, one derived
  // stream per packet index, reduction in packet order.
  const std::uint64_t stream_seed = rng.next_u64();

  struct PacketStats {
    std::int64_t bit_errors = 0;
    double snr_linear = 0.0;
  };
  std::vector<PacketStats> stats(static_cast<std::size_t>(packets));

  parallel_packets(
      static_cast<std::size_t>(packets), config.num_threads,
      [&] { return ChainCtx(config, entry, ofdm, interleaver); },
      [&](ChainCtx& ctx, std::size_t p) {
        util::Rng prng = util::Rng::derive_stream(stream_seed, p);
        prng.fill_bits(ctx.bits);
        ctx.channel.redraw(prng);
        roundtrip_into(config, entry, ofdm, interleaver, code, ctx.ws,
                       ctx.bits, ctx.channel, prng, ctx.decoded);

        PacketStats& s = stats[p];
        s.bit_errors = count_bit_errors(ctx.bits, ctx.decoded);
        // Mean per-subcarrier SNR from this packet's genie CSI (left in
        // ws.h by the roundtrip).
        const double amp =
            ofdm.subcarrier_amplitude(util::dbm_to_mw(config.tx_dbm));
        const double post_fft_noise =
            ctx.channel.noise_variance_mw() * ofdm.fft_size();
        double snr = 0.0;
        for (int bin : ofdm.data_bins()) {
          snr += amp * amp *
                 std::norm(ctx.ws.h[static_cast<std::size_t>(bin)]) /
                 post_fft_noise;
        }
        s.snr_linear = snr / ofdm.num_data_subcarriers();
      });

  PhyChainResult result;
  double snr_sum = 0.0;
  for (const PacketStats& s : stats) {
    result.bits_sent += static_cast<std::int64_t>(config.packet_bytes) * 8;
    result.bit_errors += s.bit_errors;
    result.packets_sent += 1;
    if (s.bit_errors > 0) result.packet_errors += 1;
    snr_sum += s.snr_linear;
  }
  result.mean_snr_db = util::lin_to_db(snr_sum / packets);
  return result;
}

}  // namespace acorn::baseband
