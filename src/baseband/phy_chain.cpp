#include "baseband/phy_chain.hpp"

#include <stdexcept>

#include "baseband/convolutional.hpp"
#include "baseband/interleaver.hpp"
#include "baseband/ofdm.hpp"
#include "baseband/qam.hpp"
#include "baseband/scrambler.hpp"
#include "util/units.hpp"

namespace acorn::baseband {

namespace {

ChannelConfig channel_config(const PhyChainConfig& cfg) {
  ChannelConfig ch;
  ch.sample_rate_hz = phy::width_hz(cfg.width);
  ch.noise_psd_dbm_per_hz = cfg.noise_psd_dbm_per_hz;
  ch.noise_figure_db = cfg.noise_figure_db;
  ch.path_loss_db = cfg.path_loss_db;
  ch.num_taps = cfg.num_taps;
  ch.rayleigh = cfg.rayleigh;
  return ch;
}

const phy::McsEntry& entry_for(const PhyChainConfig& cfg) {
  if (cfg.mcs_index < 0 || cfg.mcs_index > phy::kMaxSingleStreamMcs) {
    throw std::invalid_argument("coded chain supports MCS 0-7 only");
  }
  return phy::mcs(cfg.mcs_index);
}

}  // namespace

std::vector<std::uint8_t> phy_chain_roundtrip(
    const PhyChainConfig& config, std::span<const std::uint8_t> bits,
    FadingChannel& channel, util::Rng& rng) {
  const phy::McsEntry& entry = entry_for(config);
  const Ofdm ofdm(config.width);
  const BlockInterleaver interleaver =
      BlockInterleaver::for_ht(config.width, entry.modulation);
  const ConvolutionalCode code;
  const double tx_mw = util::dbm_to_mw(config.tx_dbm);

  // Scramble, encode (rate 1/2 with tail) and puncture to the MCS rate.
  const std::vector<std::uint8_t> scrambled = scramble(bits);
  const std::vector<std::uint8_t> coded = code.encode(scrambled);
  std::vector<std::uint8_t> tx_bits = puncture(coded, entry.code_rate);
  const std::size_t punctured_len = tx_bits.size();

  // Pad with zeros to a whole number of OFDM symbols (n_cbps each).
  const auto n_cbps = static_cast<std::size_t>(interleaver.block_size());
  const std::size_t n_symbols = (tx_bits.size() + n_cbps - 1) / n_cbps;
  tx_bits.resize(n_symbols * n_cbps, 0);

  const std::vector<std::uint8_t> inter =
      interleaver.interleave_stream(tx_bits);
  const std::vector<Cx> symbols = qam_modulate(inter, entry.modulation);
  const std::vector<Cx> tx = ofdm.modulate(symbols, tx_mw);
  const std::vector<Cx> rx = channel.transmit(tx, rng);
  const std::vector<Cx> h = channel.frequency_response(
      static_cast<std::size_t>(ofdm.fft_size()));
  const std::vector<Cx> eq = ofdm.demodulate(rx, h, symbols.size(), tx_mw);

  if (config.soft_decision) {
    // Post-equalization noise variance per symbol: dividing bin k by H_k
    // scales the FFT-domain noise (N * sigma^2) by 1/(amp^2 |H_k|^2).
    const double amp = ofdm.subcarrier_amplitude(tx_mw);
    const double post_fft_noise =
        channel.noise_variance_mw() * ofdm.fft_size();
    const auto data_bins = ofdm.data_bins();
    const auto nd_bins = static_cast<std::size_t>(ofdm.num_data_subcarriers());
    std::vector<double> noise_vars(symbols.size());
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      const auto bin = static_cast<std::size_t>(data_bins[i % nd_bins]);
      const double h2 = std::max(std::norm(h[bin]), 1e-12);
      noise_vars[i] = post_fft_noise / (amp * amp * h2);
    }
    std::vector<double> llrs =
        qam_soft_demodulate(eq, entry.modulation, noise_vars);
    llrs.resize(n_symbols * n_cbps, 0.0);
    // Deinterleave the LLR stream block by block: position perm[k] in
    // the received block came from pre-interleaver position k.
    std::vector<double> deinter_llrs(llrs.size());
    const auto block = static_cast<std::size_t>(interleaver.block_size());
    const auto perm = interleaver.permutation();
    for (std::size_t start = 0; start < llrs.size(); start += block) {
      for (std::size_t k = 0; k < block; ++k) {
        deinter_llrs[start + k] =
            llrs[start + static_cast<std::size_t>(perm[k])];
      }
    }
    deinter_llrs.resize(punctured_len);
    const std::vector<double> depunct =
        depuncture_soft(deinter_llrs, entry.code_rate, coded.size());
    return descramble(code.decode_soft(depunct));
  }

  std::vector<std::uint8_t> rx_bits = qam_demodulate(eq, entry.modulation);
  rx_bits.resize(n_symbols * n_cbps);  // drop pad-symbol demap residue

  std::vector<std::uint8_t> deinter =
      interleaver.deinterleave_stream(rx_bits);
  deinter.resize(punctured_len);  // strip the zero padding
  const std::vector<std::uint8_t> depunct =
      depuncture(deinter, entry.code_rate, coded.size());
  return descramble(code.decode(depunct));
}

PhyChainResult run_phy_chain(const PhyChainConfig& config, int packets,
                             util::Rng& rng) {
  if (packets <= 0 || config.packet_bytes <= 0) {
    throw std::invalid_argument("packets and packet_bytes must be positive");
  }
  const Ofdm ofdm(config.width);
  FadingChannel channel(channel_config(config), rng);
  PhyChainResult result;
  double snr_sum = 0.0;
  for (int p = 0; p < packets; ++p) {
    std::vector<std::uint8_t> bits(
        static_cast<std::size_t>(config.packet_bytes) * 8);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
    channel.redraw(rng);
    const std::vector<std::uint8_t> decoded =
        phy_chain_roundtrip(config, bits, channel, rng);

    std::int64_t errors = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (decoded[i] != bits[i]) ++errors;
    }
    result.bits_sent += static_cast<std::int64_t>(bits.size());
    result.bit_errors += errors;
    result.packets_sent += 1;
    if (errors > 0) result.packet_errors += 1;

    // Mean per-subcarrier SNR from the genie CSI for this packet.
    const std::vector<Cx> h = channel.frequency_response(
        static_cast<std::size_t>(ofdm.fft_size()));
    const double amp =
        ofdm.subcarrier_amplitude(util::dbm_to_mw(config.tx_dbm));
    const double post_fft_noise =
        channel.noise_variance_mw() * ofdm.fft_size();
    double snr = 0.0;
    for (int bin : ofdm.data_bins()) {
      snr += amp * amp * std::norm(h[static_cast<std::size_t>(bin)]) /
             post_fft_noise;
    }
    snr_sum += snr / ofdm.num_data_subcarriers();
  }
  result.mean_snr_db = util::lin_to_db(snr_sum / packets);
  return result;
}

}  // namespace acorn::baseband
