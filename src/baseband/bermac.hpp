// BERMAC: the packet-granularity BER/PER measurement loop the paper runs
// on its WARP boards (§3.1). Known payload bits flow through the full
// baseband chain — (D)QPSK mapping, optional 2x2 Alamouti STBC, OFDM
// modulation with cyclic prefix, a fading/AWGN channel, OFDM demodulation
// with genie CSI, hard-decision demapping — and the receiver, which knows
// the payload, counts bit and packet errors.
#pragma once

#include <cstdint>

#include "baseband/channel.hpp"
#include "baseband/ofdm.hpp"
#include "phy/mcs.hpp"
#include "util/rng.hpp"

namespace acorn::baseband {

struct BermacConfig {
  phy::ChannelWidth width = phy::ChannelWidth::k20MHz;
  /// Payload per packet; the paper uses 1500-byte packets.
  int packet_bytes = 1500;
  /// Packets per run; the paper transmits 9000.
  int packets = 100;
  double tx_dbm = 0.0;
  double path_loss_db = 85.0;
  double noise_psd_dbm_per_hz = -174.0;
  double noise_figure_db = 0.0;
  /// 2x2 Alamouti (the paper's mode) vs a plain SISO chain.
  bool use_stbc = true;
  /// Rayleigh block fading per packet; false = static channel.
  bool rayleigh = true;
  int num_taps = 3;
  /// Differential QPSK as in the paper's WarpLab setup; false = coherent.
  bool dqpsk = false;
  /// Capture equalized constellation points from the first packets (for
  /// Fig. 2). 0 disables capture.
  int capture_symbols = 0;
  /// Worker threads for the packet sweep; 1 = serial, 0 = one per
  /// hardware thread. Any value yields bit-identical statistics: each
  /// packet index derives its own RNG stream and the reduction is done
  /// in packet order.
  int num_threads = 1;
};

struct BermacResult {
  std::int64_t bits_sent = 0;
  std::int64_t bit_errors = 0;
  std::int64_t packets_sent = 0;
  std::int64_t packet_errors = 0;
  /// Average measured per-subcarrier SNR (dB) across packets, from the
  /// genie channel gains and the known noise variance.
  double mean_snr_db = 0.0;
  /// Equalized constellation capture (when requested).
  std::vector<Cx> constellation;
  /// RMS error-vector magnitude of the captured constellation (fraction
  /// of the unit symbol energy).
  double evm_rms = 0.0;

  double ber() const {
    return bits_sent == 0 ? 0.0
                          : static_cast<double>(bit_errors) /
                                static_cast<double>(bits_sent);
  }
  double per() const {
    return packets_sent == 0 ? 0.0
                             : static_cast<double>(packet_errors) /
                                   static_cast<double>(packets_sent);
  }
};

/// Run the measurement loop. Deterministic for a given (config, rng seed).
BermacResult run_bermac(const BermacConfig& config, util::Rng& rng);

}  // namespace acorn::baseband
