// The 802.11 per-OFDM-symbol block interleaver (two permutations):
// spreads adjacent coded bits across non-adjacent subcarriers and
// alternating constellation significance, so a deep fade on one
// subcarrier does not wipe out a run of consecutive coded bits.
//
// The column count is a parameter: 16 gives the legacy 802.11a layout,
// 13 / 18 give the 802.11n HT layouts for 20 MHz (52 data carriers) and
// 40 MHz (108 data carriers).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phy/mcs.hpp"

namespace acorn::baseband {

/// Interleaver for one OFDM symbol of `n_cbps` coded bits carried at
/// `n_bpsc` bits per subcarrier, written across `n_cols` columns.
class BlockInterleaver {
 public:
  BlockInterleaver(int n_cbps, int n_bpsc, int n_cols = 16);

  /// The HT interleaver for a width/modulation pair: 13 columns for
  /// 20 MHz, 18 for 40 MHz; n_cbps = data_subcarriers * bits_per_symbol.
  static BlockInterleaver for_ht(phy::ChannelWidth width,
                                 phy::Modulation mod);

  int block_size() const { return n_cbps_; }

  /// The forward permutation: bit k lands at position permutation()[k].
  /// Exposed so soft (LLR) streams can be deinterleaved without a
  /// dedicated overload.
  std::span<const int> permutation() const { return forward_; }

  /// Interleave exactly one block.
  std::vector<std::uint8_t> interleave(
      std::span<const std::uint8_t> block) const;
  std::vector<std::uint8_t> deinterleave(
      std::span<const std::uint8_t> block) const;

  /// Interleave a multi-block stream; length must be a multiple of the
  /// block size.
  std::vector<std::uint8_t> interleave_stream(
      std::span<const std::uint8_t> bits) const;
  std::vector<std::uint8_t> deinterleave_stream(
      std::span<const std::uint8_t> bits) const;

  /// Allocation-free variants: `out.size()` must equal the input size
  /// (and the stream forms must be a multiple of the block size). `out`
  /// must not alias the input — the permutation is applied directly.
  void interleave_into(std::span<const std::uint8_t> block,
                       std::span<std::uint8_t> out) const;
  void deinterleave_into(std::span<const std::uint8_t> block,
                         std::span<std::uint8_t> out) const;
  void interleave_stream_into(std::span<const std::uint8_t> bits,
                              std::span<std::uint8_t> out) const;
  void deinterleave_stream_into(std::span<const std::uint8_t> bits,
                                std::span<std::uint8_t> out) const;
  /// Deinterleave a per-bit soft (LLR) stream.
  void deinterleave_stream_into(std::span<const double> llrs,
                                std::span<double> out) const;

 private:
  int n_cbps_;
  std::vector<int> forward_;  // forward_[k] = position after interleaving
};

}  // namespace acorn::baseband
