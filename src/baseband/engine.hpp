// Deterministic parallel packet driver for the Monte-Carlo sweeps.
//
// The contract that makes `num_threads` a pure performance knob (§ fast
// engine in DESIGN.md): every packet index derives its own RNG stream
// (util::Rng::derive_stream), workers pull indices from a shared atomic
// counter, and each packet writes only its own preallocated result slot.
// The caller reduces the slots in packet order afterwards, so BER / PER /
// mean-SNR / constellation captures are bit-identical for any thread
// count, including the serial path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace acorn::baseband {

/// Bit errors between two equal-length streams of 0/1 bytes. Branchless
/// (XOR-and-sum vectorizes; compare-and-branch mispredicts on every
/// error) — shared by the per-packet stats of every chain.
inline std::int64_t count_bit_errors(std::span<const std::uint8_t> sent,
                                     std::span<const std::uint8_t> received) {
  std::int64_t errors = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    errors += sent[i] ^ received[i];
  }
  return errors;
}

/// Map the user-facing `num_threads` knob (0 = one per hardware thread)
/// to a concrete worker count.
inline int resolve_num_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Run `body(ctx, p)` for every packet index p in [0, packets). Each
/// worker gets its own context from `make_ctx()` (per-worker channel +
/// scratch buffers), so `body` must only touch its context and the
/// packet-indexed slot it owns. `make_ctx` is invoked from worker
/// threads and must be safe to call concurrently (it only reads shared
/// immutable state). With `num_threads` <= 1 everything runs on the
/// calling thread. The first exception thrown by any worker stops the
/// sweep and is rethrown on the calling thread.
template <typename MakeCtx, typename Body>
void parallel_packets(std::size_t packets, int num_threads,
                      MakeCtx&& make_ctx, Body&& body) {
  const int threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(
                                resolve_num_threads(num_threads)),
                            std::max<std::size_t>(packets, 1)));
  if (threads <= 1) {
    auto ctx = make_ctx();
    for (std::size_t p = 0; p < packets; ++p) body(ctx, p);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  const auto worker = [&]() {
    try {
      auto ctx = make_ctx();
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t p = next.fetch_add(1, std::memory_order_relaxed);
        if (p >= packets) break;
        body(ctx, p);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace acorn::baseband
