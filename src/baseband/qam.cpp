#include "baseband/qam.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acorn::baseband {

namespace {

// Gray mapping of m bits to one PAM axis with levels
// {-(2^m - 1), ..., -1, 1, ..., 2^m - 1}: per IEEE 802.11 Table 18-9/10.
double gray_to_level(unsigned gray_bits, int m) {
  // Convert Gray code to binary index.
  unsigned bin = gray_bits;
  for (unsigned shift = 1; shift < static_cast<unsigned>(m); shift <<= 1) {
    bin ^= bin >> shift;
  }
  const int levels = 1 << m;
  return 2.0 * static_cast<double>(bin) - (levels - 1);
}

unsigned level_to_gray(double value, int m) {
  const int levels = 1 << m;
  // Slice to the nearest level index.
  int idx = static_cast<int>(std::lround((value + (levels - 1)) / 2.0));
  idx = std::clamp(idx, 0, levels - 1);
  const auto bin = static_cast<unsigned>(idx);
  return bin ^ (bin >> 1);
}

double normalization(phy::Modulation mod) {
  switch (mod) {
    case phy::Modulation::kBpsk: return 1.0;
    case phy::Modulation::kQpsk: return 1.0 / std::sqrt(2.0);
    case phy::Modulation::kQam16: return 1.0 / std::sqrt(10.0);
    case phy::Modulation::kQam64: return 1.0 / std::sqrt(42.0);
  }
  throw std::invalid_argument("unknown modulation");
}

}  // namespace

Cx qam_map_symbol(std::span<const std::uint8_t> bits, phy::Modulation mod) {
  const int k = phy::bits_per_symbol(mod);
  if (static_cast<int>(bits.size()) != k) {
    throw std::invalid_argument("wrong bit count for symbol");
  }
  const double norm = normalization(mod);
  if (mod == phy::Modulation::kBpsk) {
    return Cx(bits[0] ? -1.0 : 1.0, 0.0);
  }
  const int half = k / 2;
  unsigned i_bits = 0;
  unsigned q_bits = 0;
  for (int b = 0; b < half; ++b) {
    i_bits = (i_bits << 1) | bits[static_cast<std::size_t>(b)];
    q_bits = (q_bits << 1) | bits[static_cast<std::size_t>(half + b)];
  }
  return norm * Cx(gray_to_level(i_bits, half), gray_to_level(q_bits, half));
}

void qam_demap_symbol(Cx symbol, phy::Modulation mod,
                      std::span<std::uint8_t> out) {
  const int k = phy::bits_per_symbol(mod);
  if (static_cast<int>(out.size()) != k) {
    throw std::invalid_argument("wrong output size for symbol");
  }
  if (mod == phy::Modulation::kBpsk) {
    out[0] = symbol.real() < 0.0 ? 1 : 0;
    return;
  }
  const double norm = normalization(mod);
  const int half = k / 2;
  const unsigned i_bits = level_to_gray(symbol.real() / norm, half);
  const unsigned q_bits = level_to_gray(symbol.imag() / norm, half);
  for (int b = 0; b < half; ++b) {
    out[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>((i_bits >> (half - 1 - b)) & 1u);
    out[static_cast<std::size_t>(half + b)] =
        static_cast<std::uint8_t>((q_bits >> (half - 1 - b)) & 1u);
  }
}

std::vector<Cx> qam_modulate(std::span<const std::uint8_t> bits,
                             phy::Modulation mod) {
  const auto k = static_cast<std::size_t>(phy::bits_per_symbol(mod));
  const std::size_t n_symbols = (bits.size() + k - 1) / k;
  std::vector<std::uint8_t> padded(bits.begin(), bits.end());
  padded.resize(n_symbols * k, 0);
  std::vector<Cx> out;
  out.reserve(n_symbols);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    out.push_back(qam_map_symbol(
        std::span<const std::uint8_t>(padded).subspan(s * k, k), mod));
  }
  return out;
}

std::vector<double> qam_soft_demodulate(std::span<const Cx> symbols,
                                        phy::Modulation mod,
                                        std::span<const double> noise_vars) {
  if (symbols.size() != noise_vars.size()) {
    throw std::invalid_argument("one noise variance per symbol required");
  }
  const int k = phy::bits_per_symbol(mod);
  // Enumerate the constellation once: point + bit labels.
  const int m = 1 << k;
  std::vector<Cx> points(static_cast<std::size_t>(m));
  std::vector<std::uint8_t> labels(static_cast<std::size_t>(m * k));
  for (int v = 0; v < m; ++v) {
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(k));
    for (int b = 0; b < k; ++b) {
      bits[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>((v >> (k - 1 - b)) & 1);
      labels[static_cast<std::size_t>(v * k + b)] =
          bits[static_cast<std::size_t>(b)];
    }
    points[static_cast<std::size_t>(v)] = qam_map_symbol(bits, mod);
  }

  std::vector<double> llrs;
  llrs.reserve(symbols.size() * static_cast<std::size_t>(k));
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const double inv_var = 1.0 / std::max(noise_vars[s], 1e-12);
    for (int b = 0; b < k; ++b) {
      double best0 = 1e300;
      double best1 = 1e300;
      for (int v = 0; v < m; ++v) {
        const double d2 =
            std::norm(symbols[s] - points[static_cast<std::size_t>(v)]);
        if (labels[static_cast<std::size_t>(v * k + b)] == 0) {
          best0 = std::min(best0, d2);
        } else {
          best1 = std::min(best1, d2);
        }
      }
      llrs.push_back((best1 - best0) * inv_var);
    }
  }
  return llrs;
}

std::vector<std::uint8_t> qam_demodulate(std::span<const Cx> symbols,
                                         phy::Modulation mod) {
  const auto k = static_cast<std::size_t>(phy::bits_per_symbol(mod));
  std::vector<std::uint8_t> out(symbols.size() * k);
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    qam_demap_symbol(symbols[s], mod,
                     std::span<std::uint8_t>(out).subspan(s * k, k));
  }
  return out;
}

}  // namespace acorn::baseband
