#include "baseband/qam.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace acorn::baseband {

namespace {

// Gray mapping of m bits to one PAM axis with levels
// {-(2^m - 1), ..., -1, 1, ..., 2^m - 1}: per IEEE 802.11 Table 18-9/10.
double gray_to_level(unsigned gray_bits, int m) {
  // Convert Gray code to binary index.
  unsigned bin = gray_bits;
  for (unsigned shift = 1; shift < static_cast<unsigned>(m); shift <<= 1) {
    bin ^= bin >> shift;
  }
  const int levels = 1 << m;
  return 2.0 * static_cast<double>(bin) - (levels - 1);
}

unsigned level_to_gray(double value, int m) {
  const int levels = 1 << m;
  // Slice to the nearest level index.
  int idx = static_cast<int>(std::lround((value + (levels - 1)) / 2.0));
  idx = std::clamp(idx, 0, levels - 1);
  const auto bin = static_cast<unsigned>(idx);
  return bin ^ (bin >> 1);
}

double normalization(phy::Modulation mod) {
  switch (mod) {
    case phy::Modulation::kBpsk: return 1.0;
    case phy::Modulation::kQpsk: return 1.0 / std::sqrt(2.0);
    case phy::Modulation::kQam16: return 1.0 / std::sqrt(10.0);
    case phy::Modulation::kQam64: return 1.0 / std::sqrt(42.0);
  }
  throw std::invalid_argument("unknown modulation");
}

// Full constellation enumeration (point + bit label per index), built
// once per modulation so the soft demapper does not rebuild it per call.
struct Constellation {
  std::vector<Cx> points;            // 2^k entries
  std::vector<std::uint8_t> labels;  // 2^k * k bit labels
  int k = 0;

  explicit Constellation(phy::Modulation mod)
      : k(phy::bits_per_symbol(mod)) {
    const int m = 1 << k;
    points.resize(static_cast<std::size_t>(m));
    labels.resize(static_cast<std::size_t>(m * k));
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(k));
    for (int v = 0; v < m; ++v) {
      for (int b = 0; b < k; ++b) {
        bits[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>((v >> (k - 1 - b)) & 1);
        labels[static_cast<std::size_t>(v * k + b)] =
            bits[static_cast<std::size_t>(b)];
      }
      points[static_cast<std::size_t>(v)] = qam_map_symbol(bits, mod);
    }
  }
};

const Constellation& constellation(phy::Modulation mod) {
  static const Constellation bpsk(phy::Modulation::kBpsk);
  static const Constellation qpsk(phy::Modulation::kQpsk);
  static const Constellation qam16(phy::Modulation::kQam16);
  static const Constellation qam64(phy::Modulation::kQam64);
  switch (mod) {
    case phy::Modulation::kBpsk: return bpsk;
    case phy::Modulation::kQpsk: return qpsk;
    case phy::Modulation::kQam16: return qam16;
    case phy::Modulation::kQam64: return qam64;
  }
  throw std::invalid_argument("unknown modulation");
}

}  // namespace

Cx qam_map_symbol(std::span<const std::uint8_t> bits, phy::Modulation mod) {
  const int k = phy::bits_per_symbol(mod);
  if (static_cast<int>(bits.size()) != k) {
    throw std::invalid_argument("wrong bit count for symbol");
  }
  const double norm = normalization(mod);
  if (mod == phy::Modulation::kBpsk) {
    return Cx(bits[0] ? -1.0 : 1.0, 0.0);
  }
  const int half = k / 2;
  unsigned i_bits = 0;
  unsigned q_bits = 0;
  for (int b = 0; b < half; ++b) {
    i_bits = (i_bits << 1) | bits[static_cast<std::size_t>(b)];
    q_bits = (q_bits << 1) | bits[static_cast<std::size_t>(half + b)];
  }
  return norm * Cx(gray_to_level(i_bits, half), gray_to_level(q_bits, half));
}

void qam_demap_symbol(Cx symbol, phy::Modulation mod,
                      std::span<std::uint8_t> out) {
  const int k = phy::bits_per_symbol(mod);
  if (static_cast<int>(out.size()) != k) {
    throw std::invalid_argument("wrong output size for symbol");
  }
  if (mod == phy::Modulation::kBpsk) {
    out[0] = symbol.real() < 0.0 ? 1 : 0;
    return;
  }
  const double norm = normalization(mod);
  const int half = k / 2;
  const unsigned i_bits = level_to_gray(symbol.real() / norm, half);
  const unsigned q_bits = level_to_gray(symbol.imag() / norm, half);
  for (int b = 0; b < half; ++b) {
    out[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>((i_bits >> (half - 1 - b)) & 1u);
    out[static_cast<std::size_t>(half + b)] =
        static_cast<std::uint8_t>((q_bits >> (half - 1 - b)) & 1u);
  }
}

void qam_modulate_into(std::span<const std::uint8_t> bits,
                       phy::Modulation mod, std::span<Cx> symbols) {
  const auto k = static_cast<std::size_t>(phy::bits_per_symbol(mod));
  const std::size_t n_symbols = (bits.size() + k - 1) / k;
  if (symbols.size() != n_symbols) {
    throw std::invalid_argument("symbol buffer size must be ceil(bits/k)");
  }
  const std::size_t whole = bits.size() / k;
  for (std::size_t s = 0; s < whole; ++s) {
    symbols[s] = qam_map_symbol(bits.subspan(s * k, k), mod);
  }
  if (whole < n_symbols) {
    // Zero-pad the trailing partial symbol on the stack (k <= 6).
    std::array<std::uint8_t, 8> last{};
    const std::size_t rem = bits.size() - whole * k;
    std::copy_n(bits.begin() + static_cast<std::ptrdiff_t>(whole * k), rem,
                last.begin());
    symbols[whole] = qam_map_symbol(
        std::span<const std::uint8_t>(last.data(), k), mod);
  }
}

std::vector<Cx> qam_modulate(std::span<const std::uint8_t> bits,
                             phy::Modulation mod) {
  const auto k = static_cast<std::size_t>(phy::bits_per_symbol(mod));
  std::vector<Cx> out((bits.size() + k - 1) / k);
  qam_modulate_into(bits, mod, out);
  return out;
}

void qam_soft_demodulate_into(std::span<const Cx> symbols,
                              phy::Modulation mod,
                              std::span<const double> noise_vars,
                              std::span<double> llrs) {
  if (symbols.size() != noise_vars.size()) {
    throw std::invalid_argument("one noise variance per symbol required");
  }
  const Constellation& c = constellation(mod);
  const int k = c.k;
  const int m = 1 << k;
  if (llrs.size() != symbols.size() * static_cast<std::size_t>(k)) {
    throw std::invalid_argument("LLR buffer size must be symbols * k");
  }
  // One distance pass per symbol: computing |y - p_v|^2 inside the bit
  // loop redoes the complex arithmetic k times (6x for 64-QAM), which
  // dominated the soft chain's per-packet profile.
  double best0[8];
  double best1[8];
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    const double inv_var = 1.0 / std::max(noise_vars[s], 1e-12);
    const Cx sym = symbols[s];
    for (int b = 0; b < k; ++b) {
      best0[b] = 1e300;
      best1[b] = 1e300;
    }
    for (int v = 0; v < m; ++v) {
      const double d2 = std::norm(sym - c.points[static_cast<std::size_t>(v)]);
      const std::uint8_t* lab = &c.labels[static_cast<std::size_t>(v * k)];
      for (int b = 0; b < k; ++b) {
        if (lab[b] == 0) {
          best0[b] = std::min(best0[b], d2);
        } else {
          best1[b] = std::min(best1[b], d2);
        }
      }
    }
    for (int b = 0; b < k; ++b) {
      llrs[s * static_cast<std::size_t>(k) + static_cast<std::size_t>(b)] =
          (best1[b] - best0[b]) * inv_var;
    }
  }
}

std::vector<double> qam_soft_demodulate(std::span<const Cx> symbols,
                                        phy::Modulation mod,
                                        std::span<const double> noise_vars) {
  const auto k = static_cast<std::size_t>(phy::bits_per_symbol(mod));
  std::vector<double> llrs(symbols.size() * k);
  qam_soft_demodulate_into(symbols, mod, noise_vars, llrs);
  return llrs;
}

void qam_demodulate_into(std::span<const Cx> symbols, phy::Modulation mod,
                         std::span<std::uint8_t> bits) {
  const auto k = static_cast<std::size_t>(phy::bits_per_symbol(mod));
  if (bits.size() != symbols.size() * k) {
    throw std::invalid_argument("bit buffer size must be symbols * k");
  }
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    qam_demap_symbol(symbols[s], mod, bits.subspan(s * k, k));
  }
}

std::vector<std::uint8_t> qam_demodulate(std::span<const Cx> symbols,
                                         phy::Modulation mod) {
  const auto k = static_cast<std::size_t>(phy::bits_per_symbol(mod));
  std::vector<std::uint8_t> out(symbols.size() * k);
  qam_demodulate_into(symbols, mod, out);
  return out;
}

}  // namespace acorn::baseband
