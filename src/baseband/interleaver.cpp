#include "baseband/interleaver.hpp"

#include <algorithm>
#include <stdexcept>

namespace acorn::baseband {

BlockInterleaver::BlockInterleaver(int n_cbps, int n_bpsc, int n_cols)
    : n_cbps_(n_cbps) {
  if (n_cbps <= 0 || n_bpsc <= 0 || n_cols <= 0 ||
      n_cbps % n_cols != 0) {
    throw std::invalid_argument("bad interleaver parameters");
  }
  const int s = std::max(n_bpsc / 2, 1);
  if (n_cbps % s != 0) {
    throw std::invalid_argument("n_cbps must be a multiple of s");
  }
  const int n_rows = n_cbps / n_cols;
  forward_.resize(static_cast<std::size_t>(n_cbps));
  for (int k = 0; k < n_cbps; ++k) {
    // First permutation: write row-wise into n_cols columns.
    const int i = n_rows * (k % n_cols) + k / n_cols;
    // Second permutation: rotate within groups of s (keeps bits cycling
    // through constellation bit positions).
    const int j = s * (i / s) + (i + n_cbps - (n_cols * i) / n_cbps) % s;
    forward_[static_cast<std::size_t>(k)] = j;
  }
  // The permutation must be a bijection.
  std::vector<char> seen(static_cast<std::size_t>(n_cbps), 0);
  for (int j : forward_) {
    if (j < 0 || j >= n_cbps || seen[static_cast<std::size_t>(j)]) {
      throw std::logic_error("interleaver permutation is not a bijection");
    }
    seen[static_cast<std::size_t>(j)] = 1;
  }
}

BlockInterleaver BlockInterleaver::for_ht(phy::ChannelWidth width,
                                          phy::Modulation mod) {
  const int n_bpsc = phy::bits_per_symbol(mod);
  const int n_cbps = phy::data_subcarriers(width) * n_bpsc;
  const int n_cols = width == phy::ChannelWidth::k20MHz ? 13 : 18;
  return BlockInterleaver(n_cbps, n_bpsc, n_cols);
}

namespace {

void check_sizes(std::size_t in, std::size_t out, int n_cbps, bool stream) {
  if (in != out) throw std::invalid_argument("output size mismatch");
  if (stream) {
    if (in % static_cast<std::size_t>(n_cbps) != 0) {
      throw std::invalid_argument("stream not a multiple of the block size");
    }
  } else if (static_cast<int>(in) != n_cbps) {
    throw std::invalid_argument("block size mismatch");
  }
}

}  // namespace

void BlockInterleaver::interleave_into(std::span<const std::uint8_t> block,
                                       std::span<std::uint8_t> out) const {
  check_sizes(block.size(), out.size(), n_cbps_, /*stream=*/false);
  for (std::size_t k = 0; k < block.size(); ++k) {
    out[static_cast<std::size_t>(forward_[k])] = block[k];
  }
}

void BlockInterleaver::deinterleave_into(std::span<const std::uint8_t> block,
                                         std::span<std::uint8_t> out) const {
  check_sizes(block.size(), out.size(), n_cbps_, /*stream=*/false);
  for (std::size_t k = 0; k < block.size(); ++k) {
    out[k] = block[static_cast<std::size_t>(forward_[k])];
  }
}

void BlockInterleaver::interleave_stream_into(
    std::span<const std::uint8_t> bits, std::span<std::uint8_t> out) const {
  check_sizes(bits.size(), out.size(), n_cbps_, /*stream=*/true);
  const auto block = static_cast<std::size_t>(n_cbps_);
  for (std::size_t start = 0; start < bits.size(); start += block) {
    interleave_into(bits.subspan(start, block), out.subspan(start, block));
  }
}

void BlockInterleaver::deinterleave_stream_into(
    std::span<const std::uint8_t> bits, std::span<std::uint8_t> out) const {
  check_sizes(bits.size(), out.size(), n_cbps_, /*stream=*/true);
  const auto block = static_cast<std::size_t>(n_cbps_);
  for (std::size_t start = 0; start < bits.size(); start += block) {
    deinterleave_into(bits.subspan(start, block), out.subspan(start, block));
  }
}

void BlockInterleaver::deinterleave_stream_into(std::span<const double> llrs,
                                                std::span<double> out) const {
  check_sizes(llrs.size(), out.size(), n_cbps_, /*stream=*/true);
  const auto block = static_cast<std::size_t>(n_cbps_);
  for (std::size_t start = 0; start < llrs.size(); start += block) {
    for (std::size_t k = 0; k < block; ++k) {
      out[start + k] = llrs[start + static_cast<std::size_t>(forward_[k])];
    }
  }
}

std::vector<std::uint8_t> BlockInterleaver::interleave(
    std::span<const std::uint8_t> block) const {
  std::vector<std::uint8_t> out(block.size());
  interleave_into(block, out);
  return out;
}

std::vector<std::uint8_t> BlockInterleaver::deinterleave(
    std::span<const std::uint8_t> block) const {
  std::vector<std::uint8_t> out(block.size());
  deinterleave_into(block, out);
  return out;
}

std::vector<std::uint8_t> BlockInterleaver::interleave_stream(
    std::span<const std::uint8_t> bits) const {
  std::vector<std::uint8_t> out(bits.size());
  interleave_stream_into(bits, out);
  return out;
}

std::vector<std::uint8_t> BlockInterleaver::deinterleave_stream(
    std::span<const std::uint8_t> bits) const {
  std::vector<std::uint8_t> out(bits.size());
  deinterleave_stream_into(bits, out);
  return out;
}

}  // namespace acorn::baseband
