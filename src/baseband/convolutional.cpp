#include "baseband/convolutional.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>
#include <string>

#include "baseband/viterbi_kernel.hpp"

namespace acorn::baseband {

namespace {

inline int parity(unsigned x) { return std::popcount(x) & 1; }

// Output pair for (state, input). State holds the most recent K-1 input
// bits, newest in the MSB (bit 5).
struct Transition {
  std::uint8_t out0;
  std::uint8_t out1;
  std::uint8_t out_pair;  // (out0 << 1) | out1: branch-metric table index
  std::uint8_t next_state;
};

struct Trellis {
  // [state][input]
  Transition t[ConvolutionalCode::kNumStates][2];

  Trellis() {
    for (int state = 0; state < ConvolutionalCode::kNumStates; ++state) {
      for (int input = 0; input < 2; ++input) {
        // Shift register contents: input bit followed by the state bits
        // (newest first): 7 bits total.
        const unsigned reg =
            (static_cast<unsigned>(input) << 6) | static_cast<unsigned>(state);
        t[state][input].out0 =
            static_cast<std::uint8_t>(parity(reg & ConvolutionalCode::kG0));
        t[state][input].out1 =
            static_cast<std::uint8_t>(parity(reg & ConvolutionalCode::kG1));
        t[state][input].out_pair = static_cast<std::uint8_t>(
            (t[state][input].out0 << 1) | t[state][input].out1);
        t[state][input].next_state =
            static_cast<std::uint8_t>(reg >> 1);
      }
    }
  }
};

const Trellis& trellis() {
  static const Trellis instance;
  return instance;
}

// Puncturing patterns over one period of rate-1/2 output pairs. A `1`
// keeps the bit; bits are ordered (A0, B0, A1, B1, ...) where A/B are the
// two generator outputs per input bit.
std::span<const std::uint8_t> pattern(phy::CodeRate rate) {
  static constexpr std::array<std::uint8_t, 2> k12 = {1, 1};
  static constexpr std::array<std::uint8_t, 4> k23 = {1, 1, 1, 0};
  static constexpr std::array<std::uint8_t, 6> k34 = {1, 1, 1, 0, 0, 1};
  static constexpr std::array<std::uint8_t, 10> k56 = {1, 1, 1, 0, 0,
                                                       1, 1, 0, 0, 1};
  switch (rate) {
    case phy::CodeRate::kRate12: return k12;
    case phy::CodeRate::kRate23: return k23;
    case phy::CodeRate::kRate34: return k34;
    case phy::CodeRate::kRate56: return k56;
  }
  throw std::invalid_argument("unknown code rate");
}

std::size_t checked_steps(std::size_t in_size, std::size_t out_size,
                          bool terminated, const char* what) {
  if (in_size % 2 != 0) {
    throw std::invalid_argument(std::string(what) +
                                " stream must have even length");
  }
  const std::size_t steps = in_size / 2;
  const auto tail =
      static_cast<std::size_t>(ConvolutionalCode::kConstraint - 1);
  if (terminated && steps < tail) {
    throw std::invalid_argument("terminated stream shorter than the tail");
  }
  if (out_size != steps - (terminated ? tail : 0)) {
    throw std::invalid_argument("decoded output size mismatch");
  }
  return steps;
}

}  // namespace

void ConvolutionalCode::encode_into(std::span<const std::uint8_t> bits,
                                    std::span<std::uint8_t> out,
                                    bool terminate) const {
  if (out.size() != encoded_length(bits.size(), terminate)) {
    throw std::invalid_argument("encoded output size mismatch");
  }
  const Trellis& tr = trellis();
  int state = 0;
  std::size_t cursor = 0;
  auto push = [&](std::uint8_t bit) {
    const Transition& step = tr.t[state][bit & 1];
    out[cursor++] = step.out0;
    out[cursor++] = step.out1;
    state = step.next_state;
  };
  for (std::uint8_t b : bits) push(b);
  if (terminate) {
    for (int i = 0; i < kConstraint - 1; ++i) push(0);
  }
}

std::vector<std::uint8_t> ConvolutionalCode::encode(
    std::span<const std::uint8_t> bits, bool terminate) const {
  std::vector<std::uint8_t> out(encoded_length(bits.size(), terminate));
  encode_into(bits, out, terminate);
  return out;
}

void ConvolutionalCode::decode_into(std::span<const std::uint8_t> coded,
                                    std::span<std::uint8_t> out,
                                    ViterbiWorkspace& ws,
                                    bool terminated) const {
  const std::size_t steps =
      checked_steps(coded.size(), out.size(), terminated, "coded");
  ws.decisions_.resize(steps);
  ws.levels_.resize(2 * steps);
  viterbi::levels_from_hard(coded, ws.levels_.data());
  std::array<std::int16_t, kNumStates> metric;
  viterbi::forward(ws.levels_.data(), steps, ws.decisions_.data(),
                   metric.data());
  viterbi::traceback(ws.decisions_.data(), steps, terminated, metric.data(),
                     out);
}

std::vector<std::uint8_t> ConvolutionalCode::decode(
    std::span<const std::uint8_t> coded, bool terminated) const {
  if (coded.size() % 2 != 0) {
    throw std::invalid_argument("coded stream must have even length");
  }
  const std::size_t steps = coded.size() / 2;
  const auto tail = static_cast<std::size_t>(kConstraint - 1);
  if (terminated && steps < tail) {
    throw std::invalid_argument("terminated stream shorter than the tail");
  }
  std::vector<std::uint8_t> bits(decoded_length(coded.size(), terminated));
  ViterbiWorkspace ws;
  decode_into(coded, bits, ws, terminated);
  return bits;
}

void ConvolutionalCode::decode_soft_into(std::span<const double> llrs,
                                         std::span<std::uint8_t> out,
                                         ViterbiWorkspace& ws,
                                         bool terminated) const {
  const std::size_t steps =
      checked_steps(llrs.size(), out.size(), terminated, "soft");
  ws.decisions_.resize(steps);
  ws.levels_.resize(2 * steps);
  // Correlation metric, quantized: hypothesizing bit 1 against a
  // positive (bit-0-favoring) LLR costs that LLR, and vice versa.
  viterbi::levels_from_soft(llrs, ws.levels_.data());
  std::array<std::int16_t, kNumStates> metric;
  viterbi::forward(ws.levels_.data(), steps, ws.decisions_.data(),
                   metric.data());
  viterbi::traceback(ws.decisions_.data(), steps, terminated, metric.data(),
                     out);
}

std::vector<std::uint8_t> ConvolutionalCode::decode_soft(
    std::span<const double> llrs, bool terminated) const {
  if (llrs.size() % 2 != 0) {
    throw std::invalid_argument("soft stream must have even length");
  }
  const std::size_t steps = llrs.size() / 2;
  const auto tail = static_cast<std::size_t>(kConstraint - 1);
  if (terminated && steps < tail) {
    throw std::invalid_argument("terminated stream shorter than the tail");
  }
  std::vector<std::uint8_t> bits(decoded_length(llrs.size(), terminated));
  ViterbiWorkspace ws;
  decode_soft_into(llrs, bits, ws, terminated);
  return bits;
}

// The puncture family walks the pattern with an explicit phase index
// instead of `i % pat.size()`: the modulo costs an integer divide per
// bit, which made depuncturing rival the Viterbi kernel itself in the
// soft chain's per-packet profile.

void depuncture_soft_into(std::span<const double> punctured,
                          phy::CodeRate rate, std::span<double> out) {
  const auto pat = pattern(rate);
  if (punctured_length(out.size(), rate) != punctured.size()) {
    throw std::invalid_argument("punctured length does not match coded_len");
  }
  if (rate == phy::CodeRate::kRate12) {
    std::copy(punctured.begin(), punctured.end(), out.begin());
    return;
  }
  std::size_t cursor = 0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = pat[k] ? punctured[cursor++] : 0.0;
    if (++k == pat.size()) k = 0;
  }
}

std::vector<double> depuncture_soft(std::span<const double> punctured,
                                    phy::CodeRate rate,
                                    std::size_t coded_len) {
  std::vector<double> out(coded_len);
  depuncture_soft_into(punctured, rate, out);
  return out;
}

std::size_t punctured_length(std::size_t coded_len, phy::CodeRate rate) {
  const auto pat = pattern(rate);
  std::size_t ones = 0;
  for (const std::uint8_t p : pat) ones += p;
  std::size_t kept = (coded_len / pat.size()) * ones;
  for (std::size_t k = 0; k < coded_len % pat.size(); ++k) kept += pat[k];
  return kept;
}

void puncture_into(std::span<const std::uint8_t> coded, phy::CodeRate rate,
                   std::span<std::uint8_t> out) {
  const auto pat = pattern(rate);
  if (out.size() != punctured_length(coded.size(), rate)) {
    throw std::invalid_argument("punctured output size mismatch");
  }
  if (rate == phy::CodeRate::kRate12) {
    std::copy(coded.begin(), coded.end(), out.begin());
    return;
  }
  std::size_t cursor = 0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (pat[k]) out[cursor++] = coded[i];
    if (++k == pat.size()) k = 0;
  }
}

std::vector<std::uint8_t> puncture(std::span<const std::uint8_t> coded,
                                   phy::CodeRate rate) {
  std::vector<std::uint8_t> out(punctured_length(coded.size(), rate));
  puncture_into(coded, rate, out);
  return out;
}

void depuncture_into(std::span<const std::uint8_t> punctured,
                     phy::CodeRate rate, std::span<std::uint8_t> out) {
  const auto pat = pattern(rate);
  if (punctured_length(out.size(), rate) != punctured.size()) {
    throw std::invalid_argument("punctured length does not match coded_len");
  }
  if (rate == phy::CodeRate::kRate12) {
    std::copy(punctured.begin(), punctured.end(), out.begin());
    return;
  }
  std::size_t cursor = 0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = pat[k] ? punctured[cursor++] : kErasedBit;
    if (++k == pat.size()) k = 0;
  }
}

std::vector<std::uint8_t> depuncture(
    std::span<const std::uint8_t> punctured, phy::CodeRate rate,
    std::size_t coded_len) {
  std::vector<std::uint8_t> out(coded_len);
  depuncture_into(punctured, rate, out);
  return out;
}

}  // namespace acorn::baseband
