#include "baseband/convolutional.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <stdexcept>
#include <string>

namespace acorn::baseband {

namespace {

inline int parity(unsigned x) { return std::popcount(x) & 1; }

// Output pair for (state, input). State holds the most recent K-1 input
// bits, newest in the MSB (bit 5).
struct Transition {
  std::uint8_t out0;
  std::uint8_t out1;
  std::uint8_t out_pair;  // (out0 << 1) | out1: branch-metric table index
  std::uint8_t next_state;
};

struct Trellis {
  // [state][input]
  Transition t[ConvolutionalCode::kNumStates][2];

  Trellis() {
    for (int state = 0; state < ConvolutionalCode::kNumStates; ++state) {
      for (int input = 0; input < 2; ++input) {
        // Shift register contents: input bit followed by the state bits
        // (newest first): 7 bits total.
        const unsigned reg =
            (static_cast<unsigned>(input) << 6) | static_cast<unsigned>(state);
        t[state][input].out0 =
            static_cast<std::uint8_t>(parity(reg & ConvolutionalCode::kG0));
        t[state][input].out1 =
            static_cast<std::uint8_t>(parity(reg & ConvolutionalCode::kG1));
        t[state][input].out_pair = static_cast<std::uint8_t>(
            (t[state][input].out0 << 1) | t[state][input].out1);
        t[state][input].next_state =
            static_cast<std::uint8_t>(reg >> 1);
      }
    }
  }
};

const Trellis& trellis() {
  static const Trellis instance;
  return instance;
}

// Puncturing patterns over one period of rate-1/2 output pairs. A `1`
// keeps the bit; bits are ordered (A0, B0, A1, B1, ...) where A/B are the
// two generator outputs per input bit.
std::span<const std::uint8_t> pattern(phy::CodeRate rate) {
  static constexpr std::array<std::uint8_t, 2> k12 = {1, 1};
  static constexpr std::array<std::uint8_t, 4> k23 = {1, 1, 1, 0};
  static constexpr std::array<std::uint8_t, 6> k34 = {1, 1, 1, 0, 0, 1};
  static constexpr std::array<std::uint8_t, 10> k56 = {1, 1, 1, 0, 0,
                                                       1, 1, 0, 0, 1};
  switch (rate) {
    case phy::CodeRate::kRate12: return k12;
    case phy::CodeRate::kRate23: return k23;
    case phy::CodeRate::kRate34: return k34;
    case phy::CodeRate::kRate56: return k56;
  }
  throw std::invalid_argument("unknown code rate");
}

// Add-compare-select over all 64 states for `steps` trellis steps.
// `fill_bm` populates the 4-entry branch-metric table (indexed by
// Transition::out_pair) for one step — the only difference between hard
// and soft decoding.
template <typename Metric, typename FillBm>
void viterbi_forward(std::size_t steps, Metric inf, FillBm&& fill_bm,
                     std::uint8_t* survivors,
                     std::array<Metric, ConvolutionalCode::kNumStates>& metric) {
  constexpr int kNumStates = ConvolutionalCode::kNumStates;
  const Trellis& tr = trellis();
  metric.fill(inf);
  metric[0] = Metric{};  // encoder starts in state 0
  std::array<Metric, kNumStates> next_metric;
  std::array<Metric, 4> bm;
  for (std::size_t step = 0; step < steps; ++step) {
    fill_bm(step, bm);
    next_metric.fill(inf);
    std::uint8_t* const surv = survivors + step * kNumStates;
    for (int state = 0; state < kNumStates; ++state) {
      const Metric m = metric[static_cast<std::size_t>(state)];
      if (m >= inf) continue;
      for (int input = 0; input < 2; ++input) {
        const Transition& t = tr.t[state][input];
        const Metric cand = m + bm[t.out_pair];
        if (cand < next_metric[t.next_state]) {
          next_metric[t.next_state] = cand;
          surv[t.next_state] =
              static_cast<std::uint8_t>(state | (input << 6));
        }
      }
    }
    metric = next_metric;
  }
}

// Walk the survivor chain backwards; bits beyond out.size() (the tail of
// a terminated stream) are traversed but not emitted.
template <typename Metric>
void viterbi_traceback(
    const std::uint8_t* survivors, std::size_t steps, bool terminated,
    const std::array<Metric, ConvolutionalCode::kNumStates>& metric,
    std::span<std::uint8_t> out) {
  constexpr int kNumStates = ConvolutionalCode::kNumStates;
  int state = 0;
  if (!terminated) {
    state = static_cast<int>(
        std::min_element(metric.begin(), metric.end()) - metric.begin());
  }
  for (std::size_t step = steps; step-- > 0;) {
    const std::uint8_t s =
        survivors[step * kNumStates + static_cast<std::size_t>(state)];
    if (step < out.size()) out[step] = (s >> 6) & 1u;
    state = s & 63;
  }
}

std::size_t checked_steps(std::size_t in_size, std::size_t out_size,
                          bool terminated, const char* what) {
  if (in_size % 2 != 0) {
    throw std::invalid_argument(std::string(what) +
                                " stream must have even length");
  }
  const std::size_t steps = in_size / 2;
  const auto tail =
      static_cast<std::size_t>(ConvolutionalCode::kConstraint - 1);
  if (terminated && steps < tail) {
    throw std::invalid_argument("terminated stream shorter than the tail");
  }
  if (out_size != steps - (terminated ? tail : 0)) {
    throw std::invalid_argument("decoded output size mismatch");
  }
  return steps;
}

}  // namespace

void ConvolutionalCode::encode_into(std::span<const std::uint8_t> bits,
                                    std::span<std::uint8_t> out,
                                    bool terminate) const {
  if (out.size() != encoded_length(bits.size(), terminate)) {
    throw std::invalid_argument("encoded output size mismatch");
  }
  const Trellis& tr = trellis();
  int state = 0;
  std::size_t cursor = 0;
  auto push = [&](std::uint8_t bit) {
    const Transition& step = tr.t[state][bit & 1];
    out[cursor++] = step.out0;
    out[cursor++] = step.out1;
    state = step.next_state;
  };
  for (std::uint8_t b : bits) push(b);
  if (terminate) {
    for (int i = 0; i < kConstraint - 1; ++i) push(0);
  }
}

std::vector<std::uint8_t> ConvolutionalCode::encode(
    std::span<const std::uint8_t> bits, bool terminate) const {
  std::vector<std::uint8_t> out(encoded_length(bits.size(), terminate));
  encode_into(bits, out, terminate);
  return out;
}

void ConvolutionalCode::decode_into(std::span<const std::uint8_t> coded,
                                    std::span<std::uint8_t> out,
                                    ViterbiWorkspace& ws,
                                    bool terminated) const {
  const std::size_t steps =
      checked_steps(coded.size(), out.size(), terminated, "coded");
  ws.survivors_.resize(steps * kNumStates);
  constexpr int kInf = std::numeric_limits<int>::max() / 4;
  std::array<int, kNumStates> metric;
  viterbi_forward<int>(
      steps, kInf,
      [&coded](std::size_t step, std::array<int, 4>& bm) {
        const std::uint8_t r0 = coded[2 * step];
        const std::uint8_t r1 = coded[2 * step + 1];
        for (int q = 0; q < 4; ++q) {
          const std::uint8_t o0 = static_cast<std::uint8_t>(q >> 1);
          const std::uint8_t o1 = static_cast<std::uint8_t>(q & 1);
          bm[static_cast<std::size_t>(q)] =
              static_cast<int>(r0 != kErasedBit && r0 != o0) +
              static_cast<int>(r1 != kErasedBit && r1 != o1);
        }
      },
      ws.survivors_.data(), metric);
  viterbi_traceback(ws.survivors_.data(), steps, terminated, metric, out);
}

std::vector<std::uint8_t> ConvolutionalCode::decode(
    std::span<const std::uint8_t> coded, bool terminated) const {
  if (coded.size() % 2 != 0) {
    throw std::invalid_argument("coded stream must have even length");
  }
  const std::size_t steps = coded.size() / 2;
  const auto tail = static_cast<std::size_t>(kConstraint - 1);
  if (terminated && steps < tail) {
    throw std::invalid_argument("terminated stream shorter than the tail");
  }
  std::vector<std::uint8_t> bits(decoded_length(coded.size(), terminated));
  ViterbiWorkspace ws;
  decode_into(coded, bits, ws, terminated);
  return bits;
}

void ConvolutionalCode::decode_soft_into(std::span<const double> llrs,
                                         std::span<std::uint8_t> out,
                                         ViterbiWorkspace& ws,
                                         bool terminated) const {
  const std::size_t steps =
      checked_steps(llrs.size(), out.size(), terminated, "soft");
  ws.survivors_.resize(steps * kNumStates);
  constexpr double kInf = 1e300;
  std::array<double, kNumStates> metric;
  viterbi_forward<double>(
      steps, kInf,
      [&llrs](std::size_t step, std::array<double, 4>& bm) {
        // Correlation metric: hypothesizing bit 1 against a positive
        // (bit-0-favoring) LLR costs that LLR, and vice versa.
        const double l0 = llrs[2 * step];
        const double l1 = llrs[2 * step + 1];
        bm[0] = -l0 - l1;
        bm[1] = -l0 + l1;
        bm[2] = l0 - l1;
        bm[3] = l0 + l1;
      },
      ws.survivors_.data(), metric);
  viterbi_traceback(ws.survivors_.data(), steps, terminated, metric, out);
}

std::vector<std::uint8_t> ConvolutionalCode::decode_soft(
    std::span<const double> llrs, bool terminated) const {
  if (llrs.size() % 2 != 0) {
    throw std::invalid_argument("soft stream must have even length");
  }
  const std::size_t steps = llrs.size() / 2;
  const auto tail = static_cast<std::size_t>(kConstraint - 1);
  if (terminated && steps < tail) {
    throw std::invalid_argument("terminated stream shorter than the tail");
  }
  std::vector<std::uint8_t> bits(decoded_length(llrs.size(), terminated));
  ViterbiWorkspace ws;
  decode_soft_into(llrs, bits, ws, terminated);
  return bits;
}

void depuncture_soft_into(std::span<const double> punctured,
                          phy::CodeRate rate, std::span<double> out) {
  const auto pat = pattern(rate);
  if (punctured_length(out.size(), rate) != punctured.size()) {
    throw std::invalid_argument("punctured length does not match coded_len");
  }
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = pat[i % pat.size()] ? punctured[cursor++] : 0.0;
  }
}

std::vector<double> depuncture_soft(std::span<const double> punctured,
                                    phy::CodeRate rate,
                                    std::size_t coded_len) {
  std::vector<double> out(coded_len);
  depuncture_soft_into(punctured, rate, out);
  return out;
}

std::size_t punctured_length(std::size_t coded_len, phy::CodeRate rate) {
  const auto pat = pattern(rate);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < coded_len; ++i) {
    if (pat[i % pat.size()]) ++kept;
  }
  return kept;
}

void puncture_into(std::span<const std::uint8_t> coded, phy::CodeRate rate,
                   std::span<std::uint8_t> out) {
  const auto pat = pattern(rate);
  if (out.size() != punctured_length(coded.size(), rate)) {
    throw std::invalid_argument("punctured output size mismatch");
  }
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (pat[i % pat.size()]) out[cursor++] = coded[i];
  }
}

std::vector<std::uint8_t> puncture(std::span<const std::uint8_t> coded,
                                   phy::CodeRate rate) {
  std::vector<std::uint8_t> out(punctured_length(coded.size(), rate));
  puncture_into(coded, rate, out);
  return out;
}

void depuncture_into(std::span<const std::uint8_t> punctured,
                     phy::CodeRate rate, std::span<std::uint8_t> out) {
  const auto pat = pattern(rate);
  if (punctured_length(out.size(), rate) != punctured.size()) {
    throw std::invalid_argument("punctured length does not match coded_len");
  }
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = pat[i % pat.size()] ? punctured[cursor++] : kErasedBit;
  }
}

std::vector<std::uint8_t> depuncture(
    std::span<const std::uint8_t> punctured, phy::CodeRate rate,
    std::size_t coded_len) {
  std::vector<std::uint8_t> out(coded_len);
  depuncture_into(punctured, rate, out);
  return out;
}

}  // namespace acorn::baseband
