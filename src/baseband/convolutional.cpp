#include "baseband/convolutional.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <stdexcept>

namespace acorn::baseband {

namespace {

inline int parity(unsigned x) { return std::popcount(x) & 1; }

// Output pair for (state, input). State holds the most recent K-1 input
// bits, newest in the MSB (bit 5).
struct Transition {
  std::uint8_t out0;
  std::uint8_t out1;
  std::uint8_t next_state;
};

struct Trellis {
  // [state][input]
  Transition t[ConvolutionalCode::kNumStates][2];

  Trellis() {
    for (int state = 0; state < ConvolutionalCode::kNumStates; ++state) {
      for (int input = 0; input < 2; ++input) {
        // Shift register contents: input bit followed by the state bits
        // (newest first): 7 bits total.
        const unsigned reg =
            (static_cast<unsigned>(input) << 6) | static_cast<unsigned>(state);
        t[state][input].out0 =
            static_cast<std::uint8_t>(parity(reg & ConvolutionalCode::kG0));
        t[state][input].out1 =
            static_cast<std::uint8_t>(parity(reg & ConvolutionalCode::kG1));
        t[state][input].next_state =
            static_cast<std::uint8_t>(reg >> 1);
      }
    }
  }
};

const Trellis& trellis() {
  static const Trellis instance;
  return instance;
}

// Puncturing patterns over one period of rate-1/2 output pairs. A `1`
// keeps the bit; bits are ordered (A0, B0, A1, B1, ...) where A/B are the
// two generator outputs per input bit.
std::span<const std::uint8_t> pattern(phy::CodeRate rate) {
  static constexpr std::array<std::uint8_t, 2> k12 = {1, 1};
  static constexpr std::array<std::uint8_t, 4> k23 = {1, 1, 1, 0};
  static constexpr std::array<std::uint8_t, 6> k34 = {1, 1, 1, 0, 0, 1};
  static constexpr std::array<std::uint8_t, 10> k56 = {1, 1, 1, 0, 0,
                                                       1, 1, 0, 0, 1};
  switch (rate) {
    case phy::CodeRate::kRate12: return k12;
    case phy::CodeRate::kRate23: return k23;
    case phy::CodeRate::kRate34: return k34;
    case phy::CodeRate::kRate56: return k56;
  }
  throw std::invalid_argument("unknown code rate");
}

}  // namespace

std::vector<std::uint8_t> ConvolutionalCode::encode(
    std::span<const std::uint8_t> bits, bool terminate) const {
  const Trellis& tr = trellis();
  std::vector<std::uint8_t> out;
  out.reserve(2 * (bits.size() + (terminate ? kConstraint - 1 : 0)));
  int state = 0;
  auto push = [&](std::uint8_t bit) {
    const Transition& step = tr.t[state][bit & 1];
    out.push_back(step.out0);
    out.push_back(step.out1);
    state = step.next_state;
  };
  for (std::uint8_t b : bits) push(b);
  if (terminate) {
    for (int i = 0; i < kConstraint - 1; ++i) push(0);
  }
  return out;
}

std::vector<std::uint8_t> ConvolutionalCode::decode(
    std::span<const std::uint8_t> coded, bool terminated) const {
  if (coded.size() % 2 != 0) {
    throw std::invalid_argument("coded stream must have even length");
  }
  const std::size_t steps = coded.size() / 2;
  const Trellis& tr = trellis();
  constexpr int kInf = std::numeric_limits<int>::max() / 4;

  std::array<int, kNumStates> metric;
  metric.fill(kInf);
  metric[0] = 0;  // encoder starts in state 0

  // survivors[step][state] = input bit and predecessor packed.
  struct Survivor {
    std::uint8_t prev;
    std::uint8_t input;
  };
  std::vector<std::array<Survivor, kNumStates>> survivors(steps);

  std::array<int, kNumStates> next_metric;
  for (std::size_t step = 0; step < steps; ++step) {
    const std::uint8_t r0 = coded[2 * step];
    const std::uint8_t r1 = coded[2 * step + 1];
    next_metric.fill(kInf);
    for (int state = 0; state < kNumStates; ++state) {
      if (metric[state] >= kInf) continue;
      for (int input = 0; input < 2; ++input) {
        const Transition& t = tr.t[state][input];
        int branch = 0;
        if (r0 != kErasedBit && r0 != t.out0) ++branch;
        if (r1 != kErasedBit && r1 != t.out1) ++branch;
        const int cand = metric[state] + branch;
        if (cand < next_metric[t.next_state]) {
          next_metric[t.next_state] = cand;
          survivors[step][t.next_state] =
              Survivor{static_cast<std::uint8_t>(state),
                       static_cast<std::uint8_t>(input)};
        }
      }
    }
    metric = next_metric;
  }

  // Traceback from state 0 when terminated, else from the best state.
  int state = 0;
  if (!terminated) {
    state = static_cast<int>(
        std::min_element(metric.begin(), metric.end()) - metric.begin());
  }
  std::vector<std::uint8_t> bits(steps);
  for (std::size_t step = steps; step-- > 0;) {
    const Survivor& s = survivors[step][state];
    bits[step] = s.input;
    state = s.prev;
  }
  if (terminated) {
    if (bits.size() < static_cast<std::size_t>(kConstraint - 1)) {
      throw std::invalid_argument("terminated stream shorter than the tail");
    }
    bits.resize(bits.size() - (kConstraint - 1));
  }
  return bits;
}

std::vector<std::uint8_t> ConvolutionalCode::decode_soft(
    std::span<const double> llrs, bool terminated) const {
  if (llrs.size() % 2 != 0) {
    throw std::invalid_argument("soft stream must have even length");
  }
  const std::size_t steps = llrs.size() / 2;
  const Trellis& tr = trellis();
  constexpr double kInf = 1e300;

  std::array<double, kNumStates> metric;
  metric.fill(kInf);
  metric[0] = 0.0;

  struct Survivor {
    std::uint8_t prev;
    std::uint8_t input;
  };
  std::vector<std::array<Survivor, kNumStates>> survivors(steps);

  std::array<double, kNumStates> next_metric;
  for (std::size_t step = 0; step < steps; ++step) {
    const double l0 = llrs[2 * step];
    const double l1 = llrs[2 * step + 1];
    next_metric.fill(kInf);
    for (int state = 0; state < kNumStates; ++state) {
      if (metric[state] >= kInf) continue;
      for (int input = 0; input < 2; ++input) {
        const Transition& t = tr.t[state][input];
        // Correlation metric: hypothesizing bit 1 against a positive
        // (bit-0-favoring) LLR costs that LLR, and vice versa.
        const double branch = (t.out0 ? l0 : -l0) + (t.out1 ? l1 : -l1);
        const double cand = metric[state] + branch;
        if (cand < next_metric[t.next_state]) {
          next_metric[t.next_state] = cand;
          survivors[step][t.next_state] =
              Survivor{static_cast<std::uint8_t>(state),
                       static_cast<std::uint8_t>(input)};
        }
      }
    }
    metric = next_metric;
  }

  int state = 0;
  if (!terminated) {
    state = static_cast<int>(
        std::min_element(metric.begin(), metric.end()) - metric.begin());
  }
  std::vector<std::uint8_t> bits(steps);
  for (std::size_t step = steps; step-- > 0;) {
    const Survivor& s = survivors[step][state];
    bits[step] = s.input;
    state = s.prev;
  }
  if (terminated) {
    if (bits.size() < static_cast<std::size_t>(kConstraint - 1)) {
      throw std::invalid_argument("terminated stream shorter than the tail");
    }
    bits.resize(bits.size() - (kConstraint - 1));
  }
  return bits;
}

std::vector<double> depuncture_soft(std::span<const double> punctured,
                                    phy::CodeRate rate,
                                    std::size_t coded_len) {
  const auto pat = pattern(rate);
  if (punctured_length(coded_len, rate) != punctured.size()) {
    throw std::invalid_argument("punctured length does not match coded_len");
  }
  std::vector<double> out(coded_len, 0.0);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < coded_len; ++i) {
    if (pat[i % pat.size()]) out[i] = punctured[cursor++];
  }
  return out;
}

std::size_t punctured_length(std::size_t coded_len, phy::CodeRate rate) {
  const auto pat = pattern(rate);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < coded_len; ++i) {
    if (pat[i % pat.size()]) ++kept;
  }
  return kept;
}

std::vector<std::uint8_t> puncture(std::span<const std::uint8_t> coded,
                                   phy::CodeRate rate) {
  const auto pat = pattern(rate);
  std::vector<std::uint8_t> out;
  out.reserve(punctured_length(coded.size(), rate));
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (pat[i % pat.size()]) out.push_back(coded[i]);
  }
  return out;
}

std::vector<std::uint8_t> depuncture(
    std::span<const std::uint8_t> punctured, phy::CodeRate rate,
    std::size_t coded_len) {
  const auto pat = pattern(rate);
  if (punctured_length(coded_len, rate) != punctured.size()) {
    throw std::invalid_argument("punctured length does not match coded_len");
  }
  std::vector<std::uint8_t> out(coded_len, kErasedBit);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < coded_len; ++i) {
    if (pat[i % pat.size()]) out[i] = punctured[cursor++];
  }
  return out;
}

}  // namespace acorn::baseband
