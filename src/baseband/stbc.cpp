#include "baseband/stbc.hpp"

#include <stdexcept>

namespace acorn::baseband {

StbcStreams alamouti_encode(std::span<const Cx> symbols) {
  StbcStreams out;
  const std::size_t n = (symbols.size() + 1) / 2 * 2;
  out.antenna_a.reserve(n);
  out.antenna_b.reserve(n);
  for (std::size_t i = 0; i < n; i += 2) {
    const Cx s0 = symbols[i];
    const Cx s1 = i + 1 < symbols.size() ? symbols[i + 1] : Cx{};
    out.antenna_a.push_back(s0);
    out.antenna_b.push_back(s1);
    out.antenna_a.push_back(-std::conj(s1));
    out.antenna_b.push_back(std::conj(s0));
  }
  return out;
}

StbcDecoded alamouti_combine(Cx r_a0, Cx r_a1, Cx r_b0, Cx r_b1, Cx h_aa,
                             Cx h_ab, Cx h_ba, Cx h_bb) {
  StbcDecoded d;
  // Standard Alamouti MRC across both receive antennas. Naming: h_xy is
  // the gain from TX antenna x to RX antenna y; r_y<slot> the RX-antenna-y
  // sample in the given slot.
  d.s0 = std::conj(h_aa) * r_a0 + h_ba * std::conj(r_a1) +
         std::conj(h_ab) * r_b0 + h_bb * std::conj(r_b1);
  d.s1 = std::conj(h_ba) * r_a0 - h_aa * std::conj(r_a1) +
         std::conj(h_bb) * r_b0 - h_ab * std::conj(r_b1);
  d.gain = std::norm(h_aa) + std::norm(h_ab) + std::norm(h_ba) +
           std::norm(h_bb);
  return d;
}

std::vector<Cx> alamouti_combine_streams(std::span<const Cx> rx_a,
                                         std::span<const Cx> rx_b, Cx h_aa,
                                         Cx h_ab, Cx h_ba, Cx h_bb) {
  if (rx_a.size() != rx_b.size() || rx_a.size() % 2 != 0) {
    throw std::invalid_argument("RX streams must be equal, even length");
  }
  std::vector<Cx> out;
  out.reserve(rx_a.size());
  for (std::size_t i = 0; i < rx_a.size(); i += 2) {
    const StbcDecoded d = alamouti_combine(rx_a[i], rx_a[i + 1], rx_b[i],
                                           rx_b[i + 1], h_aa, h_ab, h_ba,
                                           h_bb);
    const double g = d.gain > 1e-12 ? d.gain : 1.0;
    out.push_back(d.s0 / g);
    out.push_back(d.s1 / g);
  }
  return out;
}

}  // namespace acorn::baseband
