// Butterfly-structured Viterbi trellis kernel for the K = 7 (64-state)
// 802.11 convolutional code.
//
// The forward pass is reorganised from the textbook "for each state, for
// each input" scatter into 32 in-place butterflies: old states (2j, 2j+1)
// feed exactly new states (j, j+32), so one pass over a flat 64-entry
// metric array reads two adjacent metrics and writes two contiguous
// halves — no scattered next_metric[t.next_state] stores, no per-step
// array copy (the two metric buffers are pointer-swapped).
//
// Branch metrics collapse to two per-step "levels" (L0, L1), one per
// coded-bit position: because both generators (0133, 0171) tap bit 0 and
// bit 6 of the shift register, complementing either the oldest state bit
// or the input bit flips *both* output bits, so the four out-pair classes
// are (+t, -t, -t, +t) with t_j = S0[j]*L0 + S1[j]*L1 and S0/S1 fixed
// sign tables. Hard decisions map to levels in {-1, 0, +1} (0 = erasure)
// and stay *bit-exact* with the classic decoder — the integer metric is
// an affine transform (x2, minus a per-step constant) of the Hamming
// metric, and ties break the same way (even predecessor wins). Soft
// LLRs quantize to saturated int16 levels in [-kSoftLevelMax,
// kSoftLevelMax].
//
// Survivors shrink from 64 bytes/step to one std::uint64_t decision
// bitmask per step (bit s = "odd predecessor won at new state s"),
// cutting traceback memory traffic 64x. Metrics are normalised by a
// periodic subtract-min instead of an infinity sentinel, which keeps
// everything in int16 range (see kUnreachable / kNormInterval bounds in
// the .cpp).
//
// Two implementations share the exact same integer arithmetic: a
// portable GCC/Clang vector-extension kernel (16-lane int16
// add-compare-select, compiled when the compiler supports
// __builtin_shufflevector) and a scalar fallback. forward() dispatches
// at compile time; both are exposed so tests can pit them against each
// other and against the kept reference decoder (viterbi_reference.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace acorn::baseband::viterbi {

inline constexpr int kNumStates = 64;

/// Largest magnitude of a quantized soft level. 8-bit LLR quantization
/// is already generous next to the 3-6 bits commodity receivers use; the
/// int16 overflow budget in the kernel assumes levels stay within it.
inline constexpr int kSoftLevelMax = 255;

/// Initial metric of the 63 states the encoder cannot be in at t = 0.
/// Large enough that a path seeded from one strictly loses every merge
/// until real paths have reached all 64 states (6 steps), small enough
/// that int16 never overflows before the first normalization.
inline constexpr std::int16_t kUnreachable = 12288;

/// Steps between subtract-min metric normalizations.
inline constexpr std::size_t kNormInterval = 16;

/// Add-compare-select over `steps` trellis steps. `levels` holds two
/// int16 entries per step (L0, L1); the branch metric of a transition
/// with output pair (o0, o1) is (2*o0-1)*L0 + (2*o1-1)*L1. Writes one
/// decision bitmask per step into `decisions` and the 64 final state
/// metrics into `final_metric`. Dispatches to the SIMD kernel when the
/// build has one, else to the scalar butterfly.
void forward(const std::int16_t* levels, std::size_t steps,
             std::uint64_t* decisions, std::int16_t* final_metric);

/// The scalar butterfly, always compiled; bit-identical (decisions and
/// metrics) to the SIMD kernel.
void forward_scalar(const std::int16_t* levels, std::size_t steps,
                    std::uint64_t* decisions, std::int16_t* final_metric);

/// True when forward() runs the vector-extension kernel.
bool simd_active();

/// Walk the decision bitmasks backwards. Starts from state 0 when
/// `terminated`, else from the best final metric (first minimum, to
/// match the reference decoder's min_element tie-break). Steps beyond
/// out.size() — the tail of a terminated stream — are traversed but not
/// emitted.
void traceback(const std::uint64_t* decisions, std::size_t steps,
               bool terminated, const std::int16_t* final_metric,
               std::span<std::uint8_t> out);

/// Map hard coded bits to branch levels: 0 -> +1, 1 -> -1, anything
/// else (e.g. kErasedBit) -> 0, matching the reference decoder where a
/// non-bit byte costs both hypotheses equally. Writes coded.size()
/// entries.
void levels_from_hard(std::span<const std::uint8_t> coded,
                      std::int16_t* levels);

/// Quantize soft LLRs (positive = bit 0) to int16 levels, scaled so the
/// largest magnitude maps to kSoftLevelMax (all-zero input stays zero).
/// Writes llrs.size() entries.
void levels_from_soft(std::span<const double> llrs, std::int16_t* levels);

}  // namespace acorn::baseband::viterbi
