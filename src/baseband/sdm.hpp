// 2x2 spatial division multiplexing (SDM): the 802.11n mode that sends
// two independent streams for rate (paper §2: "SDM, which achieves
// higher data rates"), in contrast to STBC's diversity. Per-subcarrier
// zero-forcing detection: with y = H x + n, the receiver computes
// x_hat = H^{-1} y; noise is amplified when H is ill-conditioned, which
// is exactly why the auto-rate abandons SDM on weak links.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "baseband/fft.hpp"

namespace acorn::baseband {

/// A 2x2 complex channel matrix: h[rx][tx].
using Mimo2x2 = std::array<std::array<Cx, 2>, 2>;

/// Determinant of the channel matrix.
Cx mimo_determinant(const Mimo2x2& h);

/// Zero-forcing detection of one symbol pair from the two received
/// values. Throws std::domain_error when the channel is singular.
std::array<Cx, 2> zf_detect(const Mimo2x2& h, Cx rx0, Cx rx1);

/// Post-detection noise amplification of the zero-forcing equalizer for
/// each stream: the row norms of H^{-1} squared. Effective per-stream
/// SNR = input SNR / amplification.
std::array<double, 2> zf_noise_amplification(const Mimo2x2& h);

/// MMSE detection: x_hat = (H^H H + sigma^2 I)^{-1} H^H y. Regularizing
/// by the noise variance avoids the ZF noise blow-up on ill-conditioned
/// channels; never throws on singular H (the estimate degrades
/// gracefully instead).
std::array<Cx, 2> mmse_detect(const Mimo2x2& h, Cx rx0, Cx rx1,
                              double noise_var);

/// Split a symbol stream round-robin into two spatial streams (even
/// indices on stream 0). Pads to even length.
struct SdmStreams {
  std::vector<Cx> stream0;
  std::vector<Cx> stream1;
};
SdmStreams sdm_split(std::span<const Cx> symbols);

/// Re-merge detected streams into one stream (inverse of sdm_split).
std::vector<Cx> sdm_merge(std::span<const Cx> stream0,
                          std::span<const Cx> stream1);

}  // namespace acorn::baseband
