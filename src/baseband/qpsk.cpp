#include "baseband/qpsk.hpp"

#include <cmath>

namespace acorn::baseband {

namespace {
constexpr double kInvSqrt2 = 0.7071067811865476;
}

Cx qpsk_map(int bit0, int bit1) {
  // Gray mapping: bit0 selects the I sign, bit1 the Q sign.
  return Cx(bit0 ? -kInvSqrt2 : kInvSqrt2, bit1 ? -kInvSqrt2 : kInvSqrt2);
}

void qpsk_demap(Cx symbol, int& bit0, int& bit1) {
  bit0 = symbol.real() < 0.0 ? 1 : 0;
  bit1 = symbol.imag() < 0.0 ? 1 : 0;
}

std::vector<Cx> qpsk_modulate(std::span<const std::uint8_t> bits) {
  std::vector<Cx> symbols;
  symbols.reserve((bits.size() + 1) / 2);
  for (std::size_t i = 0; i < bits.size(); i += 2) {
    const int b0 = bits[i];
    const int b1 = i + 1 < bits.size() ? bits[i + 1] : 0;
    symbols.push_back(qpsk_map(b0, b1));
  }
  return symbols;
}

std::vector<std::uint8_t> qpsk_demodulate(std::span<const Cx> symbols) {
  std::vector<std::uint8_t> bits;
  bits.reserve(symbols.size() * 2);
  for (const Cx s : symbols) {
    int b0 = 0;
    int b1 = 0;
    qpsk_demap(s, b0, b1);
    bits.push_back(static_cast<std::uint8_t>(b0));
    bits.push_back(static_cast<std::uint8_t>(b1));
  }
  return bits;
}

namespace {
// DQPSK phase increments per Gray-coded dibit.
double dibit_phase(int b0, int b1) {
  if (b0 == 0 && b1 == 0) return 0.0;
  if (b0 == 0 && b1 == 1) return M_PI / 2.0;
  if (b0 == 1 && b1 == 1) return M_PI;
  return -M_PI / 2.0;  // b0 == 1, b1 == 0
}

void phase_to_dibit(double phase, int& b0, int& b1) {
  // Fold into [-pi, pi) and pick the nearest of the four increments.
  while (phase >= M_PI) phase -= 2.0 * M_PI;
  while (phase < -M_PI) phase += 2.0 * M_PI;
  if (phase >= -M_PI / 4.0 && phase < M_PI / 4.0) {
    b0 = 0; b1 = 0;
  } else if (phase >= M_PI / 4.0 && phase < 3.0 * M_PI / 4.0) {
    b0 = 0; b1 = 1;
  } else if (phase >= -3.0 * M_PI / 4.0 && phase < -M_PI / 4.0) {
    b0 = 1; b1 = 0;
  } else {
    b0 = 1; b1 = 1;
  }
}
}  // namespace

std::vector<Cx> dqpsk_modulate(std::span<const std::uint8_t> bits) {
  std::vector<Cx> symbols;
  symbols.reserve((bits.size() + 1) / 2);
  double phase = 0.0;  // reference symbol at phase 0 is implicit
  for (std::size_t i = 0; i < bits.size(); i += 2) {
    const int b0 = bits[i];
    const int b1 = i + 1 < bits.size() ? bits[i + 1] : 0;
    phase += dibit_phase(b0, b1);
    symbols.emplace_back(std::cos(phase), std::sin(phase));
  }
  return symbols;
}

std::vector<std::uint8_t> dqpsk_demodulate(std::span<const Cx> symbols) {
  std::vector<std::uint8_t> bits;
  bits.reserve(symbols.size() * 2);
  Cx prev(1.0, 0.0);
  for (const Cx s : symbols) {
    const double dphase = std::arg(s * std::conj(prev));
    int b0 = 0;
    int b1 = 0;
    phase_to_dibit(dphase, b0, b1);
    bits.push_back(static_cast<std::uint8_t>(b0));
    bits.push_back(static_cast<std::uint8_t>(b1));
    prev = s;
  }
  return bits;
}

}  // namespace acorn::baseband
