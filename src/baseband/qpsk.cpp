#include "baseband/qpsk.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace acorn::baseband {

namespace {
constexpr double kInvSqrt2 = 0.7071067811865476;

void check_mod_sizes(std::size_t bits, std::size_t symbols) {
  if (symbols != (bits + 1) / 2) {
    throw std::invalid_argument("symbol buffer size must be ceil(bits/2)");
  }
}

void check_demod_sizes(std::size_t symbols, std::size_t bits) {
  if (bits != 2 * symbols) {
    throw std::invalid_argument("bit buffer size must be 2 * symbols");
  }
}
}  // namespace

Cx qpsk_map(int bit0, int bit1) {
  // Gray mapping: bit0 selects the I sign, bit1 the Q sign.
  return Cx(bit0 ? -kInvSqrt2 : kInvSqrt2, bit1 ? -kInvSqrt2 : kInvSqrt2);
}

void qpsk_demap(Cx symbol, int& bit0, int& bit1) {
  bit0 = symbol.real() < 0.0 ? 1 : 0;
  bit1 = symbol.imag() < 0.0 ? 1 : 0;
}

void qpsk_modulate_into(std::span<const std::uint8_t> bits,
                        std::span<Cx> symbols) {
  check_mod_sizes(bits.size(), symbols.size());
  const std::uint8_t* const b = bits.data();
  double* const s = reinterpret_cast<double*>(symbols.data());
  const std::size_t pairs = bits.size() / 2;
  // Branchless sign selection: each bit is a coin flip, so a conditional
  // negate mispredicts half the time — OR the bit into the sign bit
  // instead, and store flat double pairs.
  constexpr std::uint64_t kMag = std::bit_cast<std::uint64_t>(kInvSqrt2);
  for (std::size_t i = 0; i < pairs; ++i) {
    s[2 * i] = std::bit_cast<double>(
        kMag | (static_cast<std::uint64_t>(b[2 * i]) << 63));
    s[2 * i + 1] = std::bit_cast<double>(
        kMag | (static_cast<std::uint64_t>(b[2 * i + 1]) << 63));
  }
  if (bits.size() % 2 != 0) {  // trailing odd bit pads with zero
    s[2 * pairs] = std::bit_cast<double>(
        kMag | (static_cast<std::uint64_t>(b[bits.size() - 1]) << 63));
    s[2 * pairs + 1] = kInvSqrt2;
  }
}

void qpsk_demodulate_into(std::span<const Cx> symbols,
                          std::span<std::uint8_t> bits) {
  check_demod_sizes(symbols.size(), bits.size());
  const double* const s = reinterpret_cast<const double*>(symbols.data());
  std::uint8_t* const b = bits.data();
  const std::size_t n = symbols.size();
  // Branchless slicing: the decision is just the sign bit (negative zero
  // cannot occur after equalization against a nonzero tap, and mapping
  // -0.0 to bit 1 is as good a tie-break as any).
  for (std::size_t i = 0; i < n; ++i) {
    b[2 * i] = static_cast<std::uint8_t>(
        std::bit_cast<std::uint64_t>(s[2 * i]) >> 63);
    b[2 * i + 1] = static_cast<std::uint8_t>(
        std::bit_cast<std::uint64_t>(s[2 * i + 1]) >> 63);
  }
}

std::vector<Cx> qpsk_modulate(std::span<const std::uint8_t> bits) {
  std::vector<Cx> symbols((bits.size() + 1) / 2);
  qpsk_modulate_into(bits, symbols);
  return symbols;
}

std::vector<std::uint8_t> qpsk_demodulate(std::span<const Cx> symbols) {
  std::vector<std::uint8_t> bits(symbols.size() * 2);
  qpsk_demodulate_into(symbols, bits);
  return bits;
}

namespace {
// DQPSK phase increments per Gray-coded dibit.
double dibit_phase(int b0, int b1) {
  if (b0 == 0 && b1 == 0) return 0.0;
  if (b0 == 0 && b1 == 1) return M_PI / 2.0;
  if (b0 == 1 && b1 == 1) return M_PI;
  return -M_PI / 2.0;  // b0 == 1, b1 == 0
}

void phase_to_dibit(double phase, int& b0, int& b1) {
  // Fold into [-pi, pi) and pick the nearest of the four increments.
  while (phase >= M_PI) phase -= 2.0 * M_PI;
  while (phase < -M_PI) phase += 2.0 * M_PI;
  if (phase >= -M_PI / 4.0 && phase < M_PI / 4.0) {
    b0 = 0; b1 = 0;
  } else if (phase >= M_PI / 4.0 && phase < 3.0 * M_PI / 4.0) {
    b0 = 0; b1 = 1;
  } else if (phase >= -3.0 * M_PI / 4.0 && phase < -M_PI / 4.0) {
    b0 = 1; b1 = 0;
  } else {
    b0 = 1; b1 = 1;
  }
}
}  // namespace

void dqpsk_modulate_into(std::span<const std::uint8_t> bits,
                         std::span<Cx> symbols) {
  check_mod_sizes(bits.size(), symbols.size());
  double phase = 0.0;  // reference symbol at phase 0 is implicit
  for (std::size_t i = 0; i < bits.size(); i += 2) {
    const int b0 = bits[i];
    const int b1 = i + 1 < bits.size() ? bits[i + 1] : 0;
    phase += dibit_phase(b0, b1);
    symbols[i / 2] = Cx(std::cos(phase), std::sin(phase));
  }
}

void dqpsk_demodulate_into(std::span<const Cx> symbols,
                           std::span<std::uint8_t> bits) {
  check_demod_sizes(symbols.size(), bits.size());
  Cx prev(1.0, 0.0);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const Cx s = symbols[i];
    const double dphase = std::arg(s * std::conj(prev));
    int b0 = 0;
    int b1 = 0;
    phase_to_dibit(dphase, b0, b1);
    bits[2 * i] = static_cast<std::uint8_t>(b0);
    bits[2 * i + 1] = static_cast<std::uint8_t>(b1);
    prev = s;
  }
}

std::vector<Cx> dqpsk_modulate(std::span<const std::uint8_t> bits) {
  std::vector<Cx> symbols((bits.size() + 1) / 2);
  dqpsk_modulate_into(bits, symbols);
  return symbols;
}

std::vector<std::uint8_t> dqpsk_demodulate(std::span<const Cx> symbols) {
  std::vector<std::uint8_t> bits(symbols.size() * 2);
  dqpsk_demodulate_into(symbols, bits);
  return bits;
}

}  // namespace acorn::baseband
