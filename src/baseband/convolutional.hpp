// The 802.11 convolutional code, for real this time: the K = 7 encoder
// (generators 133/171 octal), hard-decision Viterbi decoding, and the
// standard puncturing patterns for rates 2/3, 3/4 and 5/6.
//
// phy/coding.hpp models this code analytically (union bound); this module
// implements it, so the coded baseband chain can *measure* what the
// analytic model predicts (see baseband/phy_chain.hpp and the calibration
// bench).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phy/coding.hpp"

namespace acorn::baseband {

/// Bit value marking a punctured (erased) position for the decoder.
inline constexpr std::uint8_t kErasedBit = 2;

/// Reusable decode scratch for the butterfly Viterbi kernel
/// (baseband/viterbi_kernel.hpp). Grows to the largest packet decoded
/// through it and then stays allocation-free, so one workspace per
/// worker makes steady-state decoding heap-silent.
class ViterbiWorkspace {
 public:
  void reserve(std::size_t steps) {
    decisions_.reserve(steps);
    levels_.reserve(2 * steps);
  }

 private:
  friend class ConvolutionalCode;
  // One survivor bitmask per trellis step (bit s = the odd predecessor
  // won at state s) — 8 bytes/step instead of the classic 64.
  std::vector<std::uint64_t> decisions_;
  // Quantized per-position branch levels, two per step.
  std::vector<std::int16_t> levels_;
};

class ConvolutionalCode {
 public:
  static constexpr int kConstraint = 7;
  static constexpr int kNumStates = 1 << (kConstraint - 1);  // 64
  /// Generators in octal: 0133 and 0171.
  static constexpr unsigned kG0 = 0133;
  static constexpr unsigned kG1 = 0171;

  /// Coded bits produced by encode() for `n_bits` payload bits.
  static constexpr std::size_t encoded_length(std::size_t n_bits,
                                              bool terminate = true) {
    return 2 * (n_bits + (terminate ? kConstraint - 1 : 0));
  }
  /// Payload bits recovered from a rate-1/2 stream of `coded_len` bits.
  static constexpr std::size_t decoded_length(std::size_t coded_len,
                                              bool terminated = true) {
    return coded_len / 2 - (terminated ? kConstraint - 1 : 0);
  }

  /// Rate-1/2 encode: two coded bits per input bit. When `terminate` is
  /// true, six zero tail bits flush the encoder back to state 0 (and the
  /// decoder can assume it).
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> bits,
                                   bool terminate = true) const;

  /// Hard-decision Viterbi decode of a rate-1/2 stream (possibly with
  /// kErasedBit erasures from depuncturing). `coded.size()` must be even.
  /// When `terminated`, the traceback starts from state 0 and the six
  /// tail bits are stripped from the output.
  std::vector<std::uint8_t> decode(std::span<const std::uint8_t> coded,
                                   bool terminated = true) const;

  /// Soft-decision Viterbi over per-bit LLRs (positive = bit 0 more
  /// likely, 0 = erasure). `llrs.size()` must be even. Correlation
  /// branch metric; gains ~2 dB over hard decisions on AWGN.
  std::vector<std::uint8_t> decode_soft(std::span<const double> llrs,
                                        bool terminated = true) const;

  /// Allocation-free variants (after the workspace warms up). Output
  /// spans must be exactly encoded_length / decoded_length of the input.
  void encode_into(std::span<const std::uint8_t> bits,
                   std::span<std::uint8_t> out, bool terminate = true) const;
  void decode_into(std::span<const std::uint8_t> coded,
                   std::span<std::uint8_t> out, ViterbiWorkspace& ws,
                   bool terminated = true) const;
  void decode_soft_into(std::span<const double> llrs,
                        std::span<std::uint8_t> out, ViterbiWorkspace& ws,
                        bool terminated = true) const;
};

/// Depuncture a soft stream: punctured positions become 0 LLRs.
std::vector<double> depuncture_soft(std::span<const double> punctured,
                                    phy::CodeRate rate,
                                    std::size_t coded_len);

/// Apply the 802.11 puncturing pattern for `rate` to a rate-1/2 coded
/// stream. kRate12 is the identity.
std::vector<std::uint8_t> puncture(std::span<const std::uint8_t> coded,
                                   phy::CodeRate rate);

/// Reinsert erasures so the Viterbi decoder sees a rate-1/2 stream of
/// `coded_len` bits. kRate12 requires punctured.size() == coded_len.
std::vector<std::uint8_t> depuncture(
    std::span<const std::uint8_t> punctured, phy::CodeRate rate,
    std::size_t coded_len);

/// Number of bits the punctured stream will have for a rate-1/2 stream of
/// `coded_len` bits.
std::size_t punctured_length(std::size_t coded_len, phy::CodeRate rate);

/// Allocation-free puncturing variants; output sizes must match
/// punctured_length / coded_len exactly.
void puncture_into(std::span<const std::uint8_t> coded, phy::CodeRate rate,
                   std::span<std::uint8_t> out);
void depuncture_into(std::span<const std::uint8_t> punctured,
                     phy::CodeRate rate, std::span<std::uint8_t> out);
void depuncture_soft_into(std::span<const double> punctured,
                          phy::CodeRate rate, std::span<double> out);

}  // namespace acorn::baseband
