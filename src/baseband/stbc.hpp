// 2x2 Alamouti space-time block coding (paper ref [20]) applied per
// subcarrier across pairs of OFDM symbols — the transmission mode the
// paper's WARP experiments use ("2x2 STBC ... since on poor quality links
// the auto-rate function induces operations in this mode").
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "baseband/fft.hpp"

namespace acorn::baseband {

/// Alamouti-encode a symbol stream into two antenna streams. Input is
/// padded to even length with zeros. For each pair (s0, s1):
///   slot 0: antenna A sends s0,  antenna B sends s1;
///   slot 1: antenna A sends -s1*, antenna B sends s0*.
/// Each antenna stream has the same length as the (padded) input.
struct StbcStreams {
  std::vector<Cx> antenna_a;
  std::vector<Cx> antenna_b;
};
StbcStreams alamouti_encode(std::span<const Cx> symbols);

/// Maximum-ratio Alamouti combining for a 2x2 link on one subcarrier.
/// r(rx, slot) are the four received values for one symbol pair;
/// h(tx, rx) the four flat channel gains. Returns the two detected
/// symbols scaled by the diversity gain g = sum |h|^2 (caller divides).
struct StbcDecoded {
  Cx s0;
  Cx s1;
  double gain;  // sum of |h_ij|^2 over the four paths
};
StbcDecoded alamouti_combine(Cx r_a0, Cx r_a1, Cx r_b0, Cx r_b1, Cx h_aa,
                             Cx h_ab, Cx h_ba, Cx h_bb);

/// Combine whole streams: inputs are per-RX-antenna slot sequences (even
/// length), flat channel gains per path. Returns the recovered symbols
/// (normalized by the diversity gain).
std::vector<Cx> alamouti_combine_streams(std::span<const Cx> rx_a,
                                         std::span<const Cx> rx_b, Cx h_aa,
                                         Cx h_ab, Cx h_ba, Cx h_bb);

}  // namespace acorn::baseband
