// Barker-sequence preamble for frame detection (paper §3.1: "A Barker
// sequence is later prepended to facilitate symbol detection at the
// receiver").
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "baseband/fft.hpp"

namespace acorn::baseband {

/// The length-11 Barker code (+1/-1 chips).
std::span<const int> barker11();

/// Preamble samples: `repeats` back-to-back Barker-11 sequences scaled to
/// the given amplitude.
std::vector<Cx> make_preamble(int repeats = 4, double amplitude = 1.0);

/// Sliding correlation detector. Returns the sample index of the first
/// payload sample (i.e. one past the preamble end), or nullopt when the
/// normalized correlation never exceeds `threshold`.
std::optional<std::size_t> detect_preamble(std::span<const Cx> rx,
                                           int repeats = 4,
                                           double threshold = 0.6);

}  // namespace acorn::baseband
