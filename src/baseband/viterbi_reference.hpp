// The pre-butterfly Viterbi decoder, kept verbatim as the correctness
// oracle for the fast trellis kernel (baseband/viterbi_kernel.hpp).
//
// It derives its own transition table straight from the generator
// polynomials — deliberately sharing nothing with the kernel — so the
// randomized equivalence suite pits two independent derivations of the
// K = 7 trellis against each other. Hard decoding through the kernel is
// bit-exact against this decoder; soft decoding is exact whenever the
// LLRs are integers within +/-viterbi::kSoftLevelMax (no quantization
// loss) and statistically equivalent otherwise. Test/bench use only: it
// allocates per call and runs the slow scattered ACS on purpose.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace acorn::baseband::reference {

/// Hard-decision Viterbi decode of a rate-1/2 stream; bytes other than
/// 0/1 (e.g. kErasedBit) are erasures. Same contract as
/// ConvolutionalCode::decode.
std::vector<std::uint8_t> viterbi_decode(std::span<const std::uint8_t> coded,
                                         bool terminated = true);

/// Soft-decision Viterbi over per-bit LLRs (positive = bit 0, 0 =
/// erasure), double-precision correlation metric. Same contract as
/// ConvolutionalCode::decode_soft.
std::vector<std::uint8_t> viterbi_decode_soft(std::span<const double> llrs,
                                              bool terminated = true);

}  // namespace acorn::baseband::reference
