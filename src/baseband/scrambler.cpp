#include "baseband/scrambler.hpp"

#include <stdexcept>

namespace acorn::baseband {

Scrambler::Scrambler(std::uint8_t seed) : state_(0) { reset(seed); }

void Scrambler::reset(std::uint8_t seed) {
  if ((seed & 0x7F) == 0) {
    throw std::invalid_argument("scrambler seed must be nonzero");
  }
  state_ = static_cast<std::uint8_t>(seed & 0x7F);
}

std::uint8_t Scrambler::next_bit() {
  // Feedback = x^7 XOR x^4 (bits 6 and 3 of the 7-bit state).
  const std::uint8_t fb =
      static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1u);
  state_ = static_cast<std::uint8_t>(((state_ << 1) | fb) & 0x7F);
  return fb;
}

std::vector<std::uint8_t> Scrambler::process(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out(bits.size());
  process_into(bits, out);
  return out;
}

void Scrambler::process_into(std::span<const std::uint8_t> bits,
                             std::span<std::uint8_t> out) {
  if (out.size() != bits.size()) {
    throw std::invalid_argument("scrambler output size mismatch");
  }
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((bits[i] ^ next_bit()) & 1u);
  }
}

std::vector<std::uint8_t> scramble(std::span<const std::uint8_t> bits,
                                   std::uint8_t seed) {
  Scrambler s(seed);
  return s.process(bits);
}

}  // namespace acorn::baseband
