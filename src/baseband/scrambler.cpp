#include "baseband/scrambler.hpp"

#include <stdexcept>

namespace acorn::baseband {

Scrambler::Scrambler(std::uint8_t seed) : state_(0) { reset(seed); }

void Scrambler::reset(std::uint8_t seed) {
  if ((seed & 0x7F) == 0) {
    throw std::invalid_argument("scrambler seed must be nonzero");
  }
  state_ = static_cast<std::uint8_t>(seed & 0x7F);
}

std::uint8_t Scrambler::next_bit() {
  // Feedback = x^7 XOR x^4 (bits 6 and 3 of the 7-bit state).
  const std::uint8_t fb =
      static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1u);
  state_ = static_cast<std::uint8_t>(((state_ << 1) | fb) & 0x7F);
  return fb;
}

std::vector<std::uint8_t> Scrambler::process(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve(bits.size());
  for (std::uint8_t b : bits) {
    out.push_back(static_cast<std::uint8_t>((b ^ next_bit()) & 1u));
  }
  return out;
}

std::vector<std::uint8_t> scramble(std::span<const std::uint8_t> bits,
                                   std::uint8_t seed) {
  Scrambler s(seed);
  return s.process(bits);
}

}  // namespace acorn::baseband
