// QPSK and DQPSK symbol mapping, as used by the paper's WarpLab OFDM
// experiments (§3.1: "We generate a random bitstream and modulate it
// using DQPSK").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baseband/fft.hpp"

namespace acorn::baseband {

/// Gray-coded QPSK: 2 bits -> one unit-energy constellation point.
Cx qpsk_map(int bit0, int bit1);

/// Hard decision back to 2 bits.
void qpsk_demap(Cx symbol, int& bit0, int& bit1);

/// Map a bitstream (values 0/1) to QPSK symbols. Pads a trailing odd bit
/// with zero.
std::vector<Cx> qpsk_modulate(std::span<const std::uint8_t> bits);

/// Hard-decision demap to bits (always even count).
std::vector<std::uint8_t> qpsk_demodulate(std::span<const Cx> symbols);

/// Differential QPSK: each symbol encodes the phase *increment* relative
/// to the previous symbol, so no absolute phase reference is needed.
std::vector<Cx> dqpsk_modulate(std::span<const std::uint8_t> bits);
std::vector<std::uint8_t> dqpsk_demodulate(std::span<const Cx> symbols);

/// Allocation-free variants. For modulation `symbols.size()` must be
/// ceil(bits.size() / 2); for demodulation `bits.size()` must be
/// 2 * symbols.size().
void qpsk_modulate_into(std::span<const std::uint8_t> bits,
                        std::span<Cx> symbols);
void qpsk_demodulate_into(std::span<const Cx> symbols,
                          std::span<std::uint8_t> bits);
void dqpsk_modulate_into(std::span<const std::uint8_t> bits,
                         std::span<Cx> symbols);
void dqpsk_demodulate_into(std::span<const Cx> symbols,
                           std::span<std::uint8_t> bits);

}  // namespace acorn::baseband
