// Iterative radix-2 FFT/IFFT used by the OFDM sample chain (64-point for
// 20 MHz, 128-point for 40 MHz channels) and the Welch PSD estimator.
//
// Transforms run through an FftPlan: bit-reversal and twiddle-factor
// tables precomputed once per size. Each twiddle is evaluated directly
// (cos/sin of the exact angle) rather than accumulated with `w *= wlen`
// as the old in-place kernel did, so long butterflies no longer drift —
// a 4096-point round trip stays at ~1e-13 instead of ~1e-9 — and the
// hot loop does one table load instead of a complex multiply per
// butterfly. Plans are immutable after construction; the process-wide
// cache hands out shared plans and is safe to use from the parallel
// packet drivers.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace acorn::baseband {

using Cx = std::complex<double>;

/// True when n is a power of two (and > 0).
bool is_power_of_two(std::size_t n);

/// Precomputed tables for one transform size (a power of two).
class FftPlan {
 public:
  /// Throws std::invalid_argument unless n is a power of two.
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place decimation-in-time radix-2 FFT. `data.size()` must equal
  /// size(); throws std::invalid_argument otherwise.
  void forward(std::span<Cx> data) const;

  /// In-place inverse FFT with 1/N normalization.
  void inverse(std::span<Cx> data) const;

 private:
  void transform(std::span<Cx> data, bool inverse) const;

  std::size_t n_;
  std::vector<std::uint32_t> bitrev_;  // bitrev_[i] = bit-reversed i
  // Forward twiddles for every stage, concatenated: the stage with
  // butterfly span `len` owns entries [len/2 - 1, len - 1), holding
  // exp(-2*pi*i*k/len) for k in [0, len/2). The inverse transform
  // conjugates on the fly.
  std::vector<Cx> twiddle_;
};

/// Shared plan for size n from the process-wide cache (created on first
/// use, thread-safe). The reference stays valid for the process
/// lifetime.
const FftPlan& fft_plan(std::size_t n);

/// In-place transforms through the shared plan cache. `data.size()` must
/// be a power of two; throws std::invalid_argument otherwise.
void fft_in_place(std::span<Cx> data);
void ifft_in_place(std::span<Cx> data);

/// Out-of-place convenience wrappers.
std::vector<Cx> fft(std::span<const Cx> data);
std::vector<Cx> ifft(std::span<const Cx> data);

}  // namespace acorn::baseband
