// Iterative radix-2 FFT/IFFT used by the OFDM sample chain (64-point for
// 20 MHz, 128-point for 40 MHz channels) and the Welch PSD estimator.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace acorn::baseband {

using Cx = std::complex<double>;

/// True when n is a power of two (and > 0).
bool is_power_of_two(std::size_t n);

/// In-place decimation-in-time radix-2 FFT. `data.size()` must be a power
/// of two; throws std::invalid_argument otherwise.
void fft_in_place(std::span<Cx> data);

/// In-place inverse FFT with 1/N normalization.
void ifft_in_place(std::span<Cx> data);

/// Out-of-place convenience wrappers.
std::vector<Cx> fft(std::span<const Cx> data);
std::vector<Cx> ifft(std::span<const Cx> data);

}  // namespace acorn::baseband
