// OFDM modulator/demodulator mirroring the paper's WarpLab chain (§3.1):
// data symbols -> subcarrier grid (52 data carriers on a 64-point IFFT for
// 20 MHz, 108 on a 128-point IFFT for 40 MHz) -> cyclic prefix -> time
// samples, and the inverse with genie-aided (perfect CSI) equalization.
//
// Power convention: `modulate` scales the waveform so the *average
// time-sample power* equals `tx_power_mw`, i.e. the fixed total transmit
// power the 802.11n standard mandates for both widths. The per-subcarrier
// energy therefore drops by 10*log10(108/52) when bonding, which is the
// micro-effect the paper measures in Figs. 1-4.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "baseband/fft.hpp"
#include "phy/mcs.hpp"

namespace acorn::baseband {

class Ofdm {
 public:
  explicit Ofdm(phy::ChannelWidth width);

  phy::ChannelWidth width() const { return width_; }
  int fft_size() const { return fft_size_; }
  int cp_length() const { return fft_size_ / 4; }
  int symbol_length() const { return fft_size_ + cp_length(); }
  int num_data_subcarriers() const { return static_cast<int>(data_bins_.size()); }
  int num_pilot_subcarriers() const { return static_cast<int>(pilot_bins_.size()); }
  double sample_rate_hz() const;

  /// FFT bin indices (0..N-1) carrying data / pilots.
  std::span<const int> data_bins() const { return data_bins_; }
  std::span<const int> pilot_bins() const { return pilot_bins_; }

  /// OFDM symbols needed for `n` data constellation points.
  std::size_t num_ofdm_symbols(std::size_t n) const;

  /// Serialize data symbols into a CP-prefixed time-domain waveform with
  /// average sample power `tx_power_mw`. The final OFDM symbol is
  /// zero-padded. Pilot subcarriers carry +1 (BPSK).
  std::vector<Cx> modulate(std::span<const Cx> data_symbols,
                           double tx_power_mw = 1.0) const;

  /// Demodulate `n_data_symbols` points from a received waveform.
  /// `channel_freq` is the channel's frequency response at each FFT bin
  /// (genie CSI); equalization divides each data bin by it. The same
  /// `tx_power_mw` used at the transmitter must be supplied so the
  /// constellation is rescaled to unit energy.
  std::vector<Cx> demodulate(std::span<const Cx> rx_samples,
                             std::span<const Cx> channel_freq,
                             std::size_t n_data_symbols,
                             double tx_power_mw = 1.0) const;

  /// Extract the raw (unequalized, unscaled) data-bin values of the first
  /// `n_ofdm_symbols` OFDM symbols into one contiguous buffer:
  /// result[s * num_data_subcarriers() + d] is data bin d of symbol s.
  /// Used by receivers that combine across antennas (STBC) before
  /// equalizing.
  std::vector<Cx> extract_bins(std::span<const Cx> rx_samples,
                               std::size_t n_ofdm_symbols) const;

  /// Allocation-free variants of the waveform paths. Sizes:
  ///  - modulate_into: `out.size()` must be
  ///    num_ofdm_symbols(data_symbols.size()) * symbol_length().
  ///  - demodulate_into: writes exactly `data.size()` equalized symbols;
  ///    `time_scratch.size()` must be fft_size().
  ///  - extract_bins_into: `out.size()` must be
  ///    n_ofdm_symbols * num_data_subcarriers(); same scratch contract.
  void modulate_into(std::span<const Cx> data_symbols, double tx_power_mw,
                     std::span<Cx> out) const;
  void demodulate_into(std::span<const Cx> rx_samples,
                       std::span<const Cx> channel_freq, std::span<Cx> data,
                       double tx_power_mw, std::span<Cx> time_scratch) const;
  void extract_bins_into(std::span<const Cx> rx_samples,
                         std::size_t n_ofdm_symbols, std::span<Cx> out,
                         std::span<Cx> time_scratch) const;

  /// Amplitude applied per data subcarrier for a given total Tx power.
  double subcarrier_amplitude(double tx_power_mw) const;

 private:
  phy::ChannelWidth width_;
  int fft_size_;
  std::vector<int> data_bins_;
  std::vector<int> pilot_bins_;
};

}  // namespace acorn::baseband
