#include "baseband/viterbi_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

// The SIMD kernel needs __builtin_shufflevector (GCC >= 12, any Clang)
// and the little-endian byte order the decision packer assumes. The
// scalar butterfly below is the fallback everywhere else, or when
// ACORN_VITERBI_FORCE_SCALAR is defined (used to bench/test the
// fallback on SIMD-capable hosts).
#if !defined(ACORN_VITERBI_FORCE_SCALAR) && \
    (defined(__clang__) || (defined(__GNUC__) && __GNUC__ >= 12)) && \
    defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define ACORN_VITERBI_SIMD 1
#else
#define ACORN_VITERBI_SIMD 0
#endif

namespace acorn::baseband::viterbi {

namespace {

// Sign of the two output bits of the branch (old state 2j, input 0),
// mapped 0 -> -1, 1 -> +1: S[j] = 2 * parity(2j & G) - 1. Flipping the
// oldest state bit (2j -> 2j+1) or the input bit flips both signs, which
// is what collapses the four branch-metric classes to +/-t_j.
constexpr std::int16_t kS0[32] = {
    -1, 1, -1, 1, 1, -1, 1, -1, 1, -1, 1, -1, -1, 1, -1, 1,
    -1, 1, -1, 1, 1, -1, 1, -1, 1, -1, 1, -1, -1, 1, -1, 1};
constexpr std::int16_t kS1[32] = {
    -1, -1, -1, -1, 1, 1, 1, 1, 1,  1,  1,  1,  -1, -1, -1, -1,
    1,  1,  1,  1,  -1, -1, -1, -1, -1, -1, -1, -1, 1,  1,  1,  1};

// Overflow budget (int16, worst case soft levels |L| <= 255 so a step
// moves any metric by at most 510):
//  - between normalizations the running max grows by <= 16 * 510 and the
//    min drops by >= -16 * 510;
//  - right after a subtract-min the spread is bounded by the trellis
//    merge depth: (K-1) * (bm_max - bm_min) = 6 * 1020 = 6120;
//  - the kUnreachable = 12288 seeds strictly lose every merge for the
//    first 6 steps (12288 - 6*510 > 6*510) and are extinct before the
//    first normalization.
// Peak magnitude: max(12288 + 6*510, 6120 + 16*510) = 15348 << 32767.

inline void init_metrics(std::int16_t* m) {
  for (int s = 0; s < kNumStates; ++s) m[s] = kUnreachable;
  m[0] = 0;  // the encoder starts in state 0
}

inline void normalize(std::int16_t* m) {
  std::int16_t lo = m[0];
  for (int s = 1; s < kNumStates; ++s) lo = std::min(lo, m[s]);
  for (int s = 0; s < kNumStates; ++s)
    m[s] = static_cast<std::int16_t>(m[s] - lo);
}

}  // namespace

void forward_scalar(const std::int16_t* levels, std::size_t steps,
                    std::uint64_t* decisions, std::int16_t* final_metric) {
  alignas(64) std::int16_t bufs[2][kNumStates];
  std::int16_t* cur = bufs[0];
  std::int16_t* nxt = bufs[1];
  init_metrics(cur);
  for (std::size_t step = 0; step < steps; ++step) {
    const int l0 = levels[2 * step];
    const int l1 = levels[2 * step + 1];
    std::uint64_t dec = 0;
    for (int j = 0; j < 32; ++j) {
      const int t = kS0[j] * l0 + kS1[j] * l1;
      const int e = cur[2 * j];
      const int o = cur[2 * j + 1];
      // New state j: branch metrics +t from 2j, -t from 2j+1. Ties keep
      // the even predecessor (matches the reference decoder).
      const int ce = e + t;
      const int co = o - t;
      const bool dl = co < ce;
      nxt[j] = static_cast<std::int16_t>(dl ? co : ce);
      dec |= static_cast<std::uint64_t>(dl) << j;
      // New state j+32: the input bit flips both outputs, so the branch
      // metrics swap sign.
      const int ch = e - t;
      const int oh = o + t;
      const bool dh = oh < ch;
      nxt[32 + j] = static_cast<std::int16_t>(dh ? oh : ch);
      dec |= static_cast<std::uint64_t>(dh) << (32 + j);
    }
    decisions[step] = dec;
    std::swap(cur, nxt);
    if ((step + 1) % kNormInterval == 0) normalize(cur);
  }
  std::memcpy(final_metric, cur, kNumStates * sizeof(std::int16_t));
}

#if ACORN_VITERBI_SIMD

// The generic 16-lane vectors lower to SSE2 pairs on baseline x86-64;
// target_clones adds an AVX2 clone picked by the dynamic linker at load
// time, so one portable binary still uses the full 256-bit units where
// they exist. GCC's -Wpsabi ABI note about 32-byte vector returns is
// irrelevant here (every vector-typed helper is internal to this
// translation unit) and is silenced per-file in CMakeLists.txt.
// target_clones dispatches through an IFUNC resolver that the dynamic
// loader runs before sanitizer runtimes initialize — ThreadSanitizer
// binaries segfault on it — so clone only in uninstrumented builds.
#if defined(__SANITIZE_THREAD__)
#define ACORN_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ACORN_TSAN 1
#endif
#endif
#if defined(__x86_64__) && defined(__GLIBC__) && !defined(ACORN_TSAN)
#define ACORN_TARGET_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define ACORN_TARGET_CLONES
#endif

namespace {

typedef std::int16_t V16 __attribute__((vector_size(32)));
typedef std::uint8_t V8 __attribute__((vector_size(16)));

inline V16 load_signs(const std::int16_t* s) {
  V16 v;
  std::memcpy(&v, s, sizeof v);
  return v;
}

// 16-bit mask of the lane sign bits of an int16 comparison result
// (lanes are 0 or -1): narrow to bytes, pick one weight bit per lane,
// fold each 8-byte half with the multiply-accumulate trick (the weights
// are distinct powers of two, so the byte sum cannot carry).
inline std::uint64_t mask16(V16 d) {
  const V8 bytes = __builtin_convertvector(d, V8);
  const V8 w = {1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128};
  const V8 sel = bytes & w;
  std::uint64_t lo;
  std::uint64_t hi;
  std::memcpy(&lo, &sel, 8);
  std::memcpy(&hi, reinterpret_cast<const char*>(&sel) + 8, 8);
  const std::uint64_t fold_lo = (lo * 0x0101010101010101ull) >> 56;
  const std::uint64_t fold_hi = (hi * 0x0101010101010101ull) >> 56;
  return fold_lo | (fold_hi << 8);
}

inline V16 vmin(V16 a, V16 b) { return a < b ? a : b; }

inline std::int16_t hmin(V16 v) {
  v = vmin(v, __builtin_shufflevector(v, v, 8, 9, 10, 11, 12, 13, 14, 15,
                                      0, 1, 2, 3, 4, 5, 6, 7));
  v = vmin(v, __builtin_shufflevector(v, v, 4, 5, 6, 7, 0, 1, 2, 3, 12, 13,
                                      14, 15, 8, 9, 10, 11));
  v = vmin(v, __builtin_shufflevector(v, v, 2, 3, 0, 1, 6, 7, 4, 5, 10, 11,
                                      8, 9, 14, 15, 12, 13));
  v = vmin(v, __builtin_shufflevector(v, v, 1, 0, 3, 2, 5, 4, 7, 6, 9, 8,
                                      11, 10, 13, 12, 15, 14));
  return v[0];
}

ACORN_TARGET_CLONES
void forward_simd(const std::int16_t* levels, std::size_t steps,
                  std::uint64_t* decisions, std::int16_t* final_metric) {
  const V16 s0a = load_signs(kS0);
  const V16 s0b = load_signs(kS0 + 16);
  const V16 s1a = load_signs(kS1);
  const V16 s1b = load_signs(kS1 + 16);

  alignas(32) std::int16_t init[kNumStates];
  init_metrics(init);
  V16 c0;
  V16 c1;
  V16 c2;
  V16 c3;
  std::memcpy(&c0, init, 32);
  std::memcpy(&c1, init + 16, 32);
  std::memcpy(&c2, init + 32, 32);
  std::memcpy(&c3, init + 48, 32);

  for (std::size_t step = 0; step < steps; ++step) {
    const std::int16_t l0 = levels[2 * step];
    const std::int16_t l1 = levels[2 * step + 1];
    const V16 ta = s0a * l0 + s1a * l1;  // t_j, butterflies 0..15
    const V16 tb = s0b * l0 + s1b * l1;  // t_j, butterflies 16..31

    // Deinterleave old metrics into even (state 2j) and odd (2j+1).
    const V16 ea = __builtin_shufflevector(c0, c1, 0, 2, 4, 6, 8, 10, 12,
                                           14, 16, 18, 20, 22, 24, 26, 28,
                                           30);
    const V16 oa = __builtin_shufflevector(c0, c1, 1, 3, 5, 7, 9, 11, 13,
                                           15, 17, 19, 21, 23, 25, 27, 29,
                                           31);
    const V16 eb = __builtin_shufflevector(c2, c3, 0, 2, 4, 6, 8, 10, 12,
                                           14, 16, 18, 20, 22, 24, 26, 28,
                                           30);
    const V16 ob = __builtin_shufflevector(c2, c3, 1, 3, 5, 7, 9, 11, 13,
                                           15, 17, 19, 21, 23, 25, 27, 29,
                                           31);

    // New states j (low half): even + t vs odd - t; strict < keeps the
    // even predecessor on ties, exactly like the scalar butterfly.
    const V16 ce_a = ea + ta;
    const V16 co_a = oa - ta;
    const V16 dl_a = co_a < ce_a;
    c0 = vmin(co_a, ce_a);
    const V16 ce_b = eb + tb;
    const V16 co_b = ob - tb;
    const V16 dl_b = co_b < ce_b;
    c1 = vmin(co_b, ce_b);
    // New states j+32 (high half): signs swap.
    const V16 ch_a = ea - ta;
    const V16 oh_a = oa + ta;
    const V16 dh_a = oh_a < ch_a;
    c2 = vmin(oh_a, ch_a);
    const V16 ch_b = eb - tb;
    const V16 oh_b = ob + tb;
    const V16 dh_b = oh_b < ch_b;
    c3 = vmin(oh_b, ch_b);

    decisions[step] = mask16(dl_a) | (mask16(dl_b) << 16) |
                      (mask16(dh_a) << 32) | (mask16(dh_b) << 48);

    if ((step + 1) % kNormInterval == 0) {
      const std::int16_t lo = hmin(vmin(vmin(c0, c1), vmin(c2, c3)));
      c0 -= lo;
      c1 -= lo;
      c2 -= lo;
      c3 -= lo;
    }
  }

  std::memcpy(final_metric, &c0, 32);
  std::memcpy(final_metric + 16, &c1, 32);
  std::memcpy(final_metric + 32, &c2, 32);
  std::memcpy(final_metric + 48, &c3, 32);
}

}  // namespace

#endif  // ACORN_VITERBI_SIMD

void forward(const std::int16_t* levels, std::size_t steps,
             std::uint64_t* decisions, std::int16_t* final_metric) {
#if ACORN_VITERBI_SIMD
  forward_simd(levels, steps, decisions, final_metric);
#else
  forward_scalar(levels, steps, decisions, final_metric);
#endif
}

bool simd_active() { return ACORN_VITERBI_SIMD != 0; }

void traceback(const std::uint64_t* decisions, std::size_t steps,
               bool terminated, const std::int16_t* final_metric,
               std::span<std::uint8_t> out) {
  int state = 0;
  if (!terminated) {
    // First minimum, to match std::min_element in the reference.
    std::int16_t best = final_metric[0];
    for (int s = 1; s < kNumStates; ++s) {
      if (final_metric[s] < best) {
        best = final_metric[s];
        state = s;
      }
    }
  }
  for (std::size_t step = steps; step-- > 0;) {
    // The newest input bit sits in bit 5 of the state; the decision bit
    // picks the odd/even predecessor of the butterfly.
    if (step < out.size()) {
      out[step] = static_cast<std::uint8_t>(state >> 5);
    }
    const int bit = static_cast<int>((decisions[step] >>
                                      static_cast<unsigned>(state)) & 1u);
    state = ((state & 31) << 1) | bit;
  }
}

void levels_from_hard(std::span<const std::uint8_t> coded,
                      std::int16_t* levels) {
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const std::uint8_t r = coded[i];
    // 2 * hamming_cost(r, o) == 1 - level * sign(o), so the integer
    // metric is an affine transform of the reference Hamming metric:
    // bit-exact decisions. Any byte that is neither 0 nor 1 costs both
    // hypotheses equally in the reference, i.e. acts as an erasure.
    levels[i] = r == 0 ? std::int16_t{1}
                       : (r == 1 ? std::int16_t{-1} : std::int16_t{0});
  }
}

void levels_from_soft(std::span<const double> llrs, std::int16_t* levels) {
  // Four max accumulators: a single max chain is a loop-carried
  // dependency the compiler cannot reassociate under strict FP, and the
  // serial scan showed up in the soft chain's per-packet profile.
  double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= llrs.size(); i += 4) {
    p0 = std::max(p0, std::abs(llrs[i]));
    p1 = std::max(p1, std::abs(llrs[i + 1]));
    p2 = std::max(p2, std::abs(llrs[i + 2]));
    p3 = std::max(p3, std::abs(llrs[i + 3]));
  }
  for (; i < llrs.size(); ++i) p0 = std::max(p0, std::abs(llrs[i]));
  const double peak = std::max(std::max(p0, p1), std::max(p2, p3));
  if (peak <= 0.0) {
    std::memset(levels, 0, llrs.size() * sizeof(std::int16_t));
    return;
  }
  const double scale = static_cast<double>(kSoftLevelMax) / peak;
  for (std::size_t k = 0; k < llrs.size(); ++k) {
    const long q = std::lrint(llrs[k] * scale);
    levels[k] = static_cast<std::int16_t>(
        std::clamp<long>(q, -kSoftLevelMax, kSoftLevelMax));
  }
}

}  // namespace acorn::baseband::viterbi
