// Welch power-spectral-density estimation, used to regenerate the paper's
// Fig. 1 (the ~3 dB per-subcarrier PSD drop when bonding at fixed Tx).
#pragma once

#include <span>
#include <vector>

#include "baseband/fft.hpp"

namespace acorn::baseband {

struct PsdEstimate {
  /// Baseband frequency of each bin, in Hz, centered on 0 (i.e. relative
  /// to the carrier Fc), ascending.
  std::vector<double> freq_hz;
  /// PSD in dBm/Hz (assuming the input samples are in sqrt(mW)).
  std::vector<double> psd_dbm_hz;
};

/// Welch's method with a Hann window and 50% overlap.
/// `segment` must be a power of two and <= samples.size().
PsdEstimate welch_psd(std::span<const Cx> samples, std::size_t segment,
                      double sample_rate_hz);

/// Median in-band PSD level over bins whose |freq| lies in
/// [0, occupied_hz/2]; a robust single-number summary of the flat top of
/// the OFDM spectrum (paper quotes -92 vs -95 dB).
double inband_level_dbm_hz(const PsdEstimate& psd, double occupied_hz);

}  // namespace acorn::baseband
