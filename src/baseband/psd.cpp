#include "baseband/psd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace acorn::baseband {

PsdEstimate welch_psd(std::span<const Cx> samples, std::size_t segment,
                      double sample_rate_hz) {
  if (!is_power_of_two(segment)) {
    throw std::invalid_argument("segment must be a power of two");
  }
  if (samples.size() < segment) {
    throw std::invalid_argument("fewer samples than one segment");
  }
  // Hann window and its power normalization.
  std::vector<double> window(segment);
  double window_power = 0.0;
  for (std::size_t n = 0; n < segment; ++n) {
    window[n] = 0.5 * (1.0 - std::cos(2.0 * M_PI * static_cast<double>(n) /
                                      static_cast<double>(segment - 1)));
    window_power += window[n] * window[n];
  }

  const std::size_t hop = segment / 2;  // 50% overlap
  std::vector<double> acc(segment, 0.0);
  std::size_t n_segments = 0;
  std::vector<Cx> buf(segment);
  for (std::size_t start = 0; start + segment <= samples.size();
       start += hop) {
    for (std::size_t n = 0; n < segment; ++n) {
      buf[n] = samples[start + n] * window[n];
    }
    fft_in_place(buf);
    for (std::size_t k = 0; k < segment; ++k) acc[k] += std::norm(buf[k]);
    ++n_segments;
  }

  // Periodogram scaling: P(f_k) = |X_k|^2 / (Fs * sum w^2).
  const double scale =
      1.0 / (sample_rate_hz * window_power * static_cast<double>(n_segments));

  PsdEstimate out;
  out.freq_hz.resize(segment);
  out.psd_dbm_hz.resize(segment);
  // Reorder FFT bins to ascending frequency (negative first).
  for (std::size_t k = 0; k < segment; ++k) {
    const std::size_t src = (k + segment / 2) % segment;
    const double f =
        (static_cast<double>(k) - static_cast<double>(segment) / 2.0) *
        sample_rate_hz / static_cast<double>(segment);
    out.freq_hz[k] = f;
    const double p = std::max(acc[src] * scale, 1e-30);
    out.psd_dbm_hz[k] = util::mw_to_dbm(p);
  }
  return out;
}

double inband_level_dbm_hz(const PsdEstimate& psd, double occupied_hz) {
  std::vector<double> levels;
  for (std::size_t k = 0; k < psd.freq_hz.size(); ++k) {
    if (std::abs(psd.freq_hz[k]) <= occupied_hz / 2.0) {
      levels.push_back(psd.psd_dbm_hz[k]);
    }
  }
  if (levels.empty()) throw std::invalid_argument("no in-band bins");
  return util::median(levels);
}

}  // namespace acorn::baseband
