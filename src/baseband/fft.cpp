#include "baseband/fft.hpp"

#include <cmath>
#include <stdexcept>

namespace acorn::baseband {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

void bit_reverse_permute(std::span<Cx> data) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

void transform(std::span<Cx> data, bool inverse) {
  if (!is_power_of_two(data.size())) {
    throw std::invalid_argument("FFT size must be a power of two");
  }
  const std::size_t n = data.size();
  bit_reverse_permute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Cx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Cx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cx u = data[i + k];
        const Cx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

}  // namespace

void fft_in_place(std::span<Cx> data) { transform(data, /*inverse=*/false); }

void ifft_in_place(std::span<Cx> data) { transform(data, /*inverse=*/true); }

std::vector<Cx> fft(std::span<const Cx> data) {
  std::vector<Cx> out(data.begin(), data.end());
  fft_in_place(out);
  return out;
}

std::vector<Cx> ifft(std::span<const Cx> data) {
  std::vector<Cx> out(data.begin(), data.end());
  ifft_in_place(out);
  return out;
}

}  // namespace acorn::baseband
