#include "baseband/fft.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace acorn::baseband {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("FFT size must be a power of two");
  }
  bitrev_.resize(n);
  const int bits = std::countr_zero(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (int b = 0; b < bits; ++b) r |= ((i >> b) & 1u) << (bits - 1 - b);
    bitrev_[i] = static_cast<std::uint32_t>(r);
  }
  twiddle_.resize(n > 1 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t k = 0; k < half; ++k) {
      const double angle =
          -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(len);
      twiddle_[half - 1 + k] = Cx(std::cos(angle), std::sin(angle));
    }
  }
}

void FftPlan::transform(std::span<Cx> data, bool inverse) const {
  if (data.size() != n_) {
    throw std::invalid_argument("data size does not match the FFT plan");
  }
  // Work on flat double pairs through raw pointers (the array-oriented
  // access std::complex guarantees): both std::span indexing and 16-byte
  // std::complex loads/stores keep GCC from tightening the butterfly
  // loop — together they cost ~7x here.
  const std::size_t n = n_;
  Cx* const d = data.data();
  double* const dd = reinterpret_cast<double*>(data.data());
  const std::uint32_t* const br = bitrev_.data();
  const double* const tw = reinterpret_cast<const double*>(twiddle_.data());
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = br[i];
    if (i < j) std::swap(d[i], d[j]);
  }
  // Manual real/imag arithmetic: std::complex operator* carries NaN
  // fix-up branches that roughly double the butterfly cost.
  const double conj = inverse ? -1.0 : 1.0;
  // The first two stages use twiddles 1 and -i only (+i when inverse),
  // so their butterflies are pure add/sub/swap — a third of all
  // butterflies with no multiplies at all.
  if (n >= 2) {
    for (std::size_t i = 0; i < 2 * n; i += 4) {
      const double ar = dd[i];
      const double ai = dd[i + 1];
      const double br_ = dd[i + 2];
      const double bi_ = dd[i + 3];
      dd[i] = ar + br_;
      dd[i + 1] = ai + bi_;
      dd[i + 2] = ar - br_;
      dd[i + 3] = ai - bi_;
    }
  }
  if (n >= 4) {
    for (std::size_t i = 0; i < 2 * n; i += 8) {
      const double a0r = dd[i];
      const double a0i = dd[i + 1];
      const double b0r = dd[i + 4];
      const double b0i = dd[i + 5];
      dd[i] = a0r + b0r;
      dd[i + 1] = a0i + b0i;
      dd[i + 4] = a0r - b0r;
      dd[i + 5] = a0i - b0i;
      const double a1r = dd[i + 2];
      const double a1i = dd[i + 3];
      const double vr = conj * dd[i + 7];
      const double vi = -conj * dd[i + 6];
      dd[i + 2] = a1r + vr;
      dd[i + 3] = a1i + vi;
      dd[i + 6] = a1r - vr;
      dd[i + 7] = a1i - vi;
    }
  }
  for (std::size_t len = 8; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const double* const w = tw + 2 * (half - 1);
    for (std::size_t i = 0; i < n; i += len) {
      double* const lo = dd + 2 * i;
      double* const hi = dd + 2 * (i + half);
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = w[2 * k];
        const double wi = conj * w[2 * k + 1];
        const double br_ = hi[2 * k];
        const double bi_ = hi[2 * k + 1];
        const double vr = br_ * wr - bi_ * wi;
        const double vi = br_ * wi + bi_ * wr;
        const double ar = lo[2 * k];
        const double ai = lo[2 * k + 1];
        lo[2 * k] = ar + vr;
        lo[2 * k + 1] = ai + vi;
        hi[2 * k] = ar - vr;
        hi[2 * k + 1] = ai - vi;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < 2 * n; ++i) dd[i] *= scale;
  }
}

void FftPlan::forward(std::span<Cx> data) const {
  transform(data, /*inverse=*/false);
}

void FftPlan::inverse(std::span<Cx> data) const {
  transform(data, /*inverse=*/true);
}

namespace {

// Plan cache: one slot per power of two, filled on first use. Lookup is
// a single acquire load, so concurrent packet workers never contend
// after warm-up; the mutex only guards construction. The owner vector
// frees the plans at process exit (keeps the ASan leak check clean).
std::array<std::atomic<const FftPlan*>, 64> g_plan_slots{};
std::mutex g_plan_mutex;
std::vector<std::unique_ptr<const FftPlan>>& plan_owner() {
  static std::vector<std::unique_ptr<const FftPlan>> owner;
  return owner;
}

}  // namespace

const FftPlan& fft_plan(std::size_t n) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("FFT size must be a power of two");
  }
  const int idx = std::countr_zero(n);
  const FftPlan* plan =
      g_plan_slots[static_cast<std::size_t>(idx)].load(std::memory_order_acquire);
  if (plan == nullptr) {
    std::lock_guard<std::mutex> lock(g_plan_mutex);
    plan = g_plan_slots[static_cast<std::size_t>(idx)].load(
        std::memory_order_relaxed);
    if (plan == nullptr) {
      auto fresh = std::make_unique<const FftPlan>(n);
      plan = fresh.get();
      plan_owner().push_back(std::move(fresh));
      g_plan_slots[static_cast<std::size_t>(idx)].store(
          plan, std::memory_order_release);
    }
  }
  return *plan;
}

void fft_in_place(std::span<Cx> data) { fft_plan(data.size()).forward(data); }

void ifft_in_place(std::span<Cx> data) { fft_plan(data.size()).inverse(data); }

std::vector<Cx> fft(std::span<const Cx> data) {
  std::vector<Cx> out(data.begin(), data.end());
  fft_in_place(out);
  return out;
}

std::vector<Cx> ifft(std::span<const Cx> data) {
  std::vector<Cx> out(data.begin(), data.end());
  ifft_in_place(out);
  return out;
}

}  // namespace acorn::baseband
