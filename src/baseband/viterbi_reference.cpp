#include "baseband/viterbi_reference.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <stdexcept>

#include "baseband/convolutional.hpp"

namespace acorn::baseband::reference {

namespace {

constexpr int kConstraint = ConvolutionalCode::kConstraint;
constexpr int kNumStates = ConvolutionalCode::kNumStates;

inline int parity(unsigned x) { return std::popcount(x) & 1; }

// Output pair for (state, input). State holds the most recent K-1 input
// bits, newest in the MSB (bit 5).
struct Transition {
  std::uint8_t out_pair;    // (out0 << 1) | out1: branch-metric index
  std::uint8_t next_state;
};

struct Trellis {
  Transition t[kNumStates][2];  // [state][input]

  Trellis() {
    for (int state = 0; state < kNumStates; ++state) {
      for (int input = 0; input < 2; ++input) {
        const unsigned reg =
            (static_cast<unsigned>(input) << 6) | static_cast<unsigned>(state);
        const int out0 = parity(reg & ConvolutionalCode::kG0);
        const int out1 = parity(reg & ConvolutionalCode::kG1);
        t[state][input].out_pair =
            static_cast<std::uint8_t>((out0 << 1) | out1);
        t[state][input].next_state = static_cast<std::uint8_t>(reg >> 1);
      }
    }
  }
};

const Trellis& trellis() {
  static const Trellis instance;
  return instance;
}

// The classic scattered add-compare-select: 64 states x 2 inputs, one
// survivor byte per (step, state), per-step metric array copy and an
// infinity sentinel for unreached states.
template <typename Metric, typename FillBm>
void viterbi_forward(std::size_t steps, Metric inf, FillBm&& fill_bm,
                     std::uint8_t* survivors,
                     std::array<Metric, kNumStates>& metric) {
  const Trellis& tr = trellis();
  metric.fill(inf);
  metric[0] = Metric{};  // encoder starts in state 0
  std::array<Metric, kNumStates> next_metric;
  std::array<Metric, 4> bm;
  for (std::size_t step = 0; step < steps; ++step) {
    fill_bm(step, bm);
    next_metric.fill(inf);
    std::uint8_t* const surv = survivors + step * kNumStates;
    for (int state = 0; state < kNumStates; ++state) {
      const Metric m = metric[static_cast<std::size_t>(state)];
      if (m >= inf) continue;
      for (int input = 0; input < 2; ++input) {
        const Transition& t = tr.t[state][input];
        const Metric cand = m + bm[t.out_pair];
        if (cand < next_metric[t.next_state]) {
          next_metric[t.next_state] = cand;
          surv[t.next_state] =
              static_cast<std::uint8_t>(state | (input << 6));
        }
      }
    }
    metric = next_metric;
  }
}

template <typename Metric>
void viterbi_traceback(const std::uint8_t* survivors, std::size_t steps,
                       bool terminated,
                       const std::array<Metric, kNumStates>& metric,
                       std::span<std::uint8_t> out) {
  int state = 0;
  if (!terminated) {
    state = static_cast<int>(
        std::min_element(metric.begin(), metric.end()) - metric.begin());
  }
  for (std::size_t step = steps; step-- > 0;) {
    const std::uint8_t s =
        survivors[step * kNumStates + static_cast<std::size_t>(state)];
    if (step < out.size()) out[step] = (s >> 6) & 1u;
    state = s & 63;
  }
}

std::size_t checked_steps(std::size_t in_size, bool terminated) {
  if (in_size % 2 != 0) {
    throw std::invalid_argument("coded stream must have even length");
  }
  const std::size_t steps = in_size / 2;
  const auto tail = static_cast<std::size_t>(kConstraint - 1);
  if (terminated && steps < tail) {
    throw std::invalid_argument("terminated stream shorter than the tail");
  }
  return steps;
}

}  // namespace

std::vector<std::uint8_t> viterbi_decode(std::span<const std::uint8_t> coded,
                                         bool terminated) {
  const std::size_t steps = checked_steps(coded.size(), terminated);
  std::vector<std::uint8_t> survivors(steps * kNumStates);
  constexpr int kInf = std::numeric_limits<int>::max() / 4;
  std::array<int, kNumStates> metric;
  viterbi_forward<int>(
      steps, kInf,
      [&coded](std::size_t step, std::array<int, 4>& bm) {
        const std::uint8_t r0 = coded[2 * step];
        const std::uint8_t r1 = coded[2 * step + 1];
        for (int q = 0; q < 4; ++q) {
          const auto o0 = static_cast<std::uint8_t>(q >> 1);
          const auto o1 = static_cast<std::uint8_t>(q & 1);
          bm[static_cast<std::size_t>(q)] =
              static_cast<int>(r0 != kErasedBit && r0 != o0) +
              static_cast<int>(r1 != kErasedBit && r1 != o1);
        }
      },
      survivors.data(), metric);
  std::vector<std::uint8_t> out(
      ConvolutionalCode::decoded_length(coded.size(), terminated));
  viterbi_traceback(survivors.data(), steps, terminated, metric, out);
  return out;
}

std::vector<std::uint8_t> viterbi_decode_soft(std::span<const double> llrs,
                                              bool terminated) {
  const std::size_t steps = checked_steps(llrs.size(), terminated);
  std::vector<std::uint8_t> survivors(steps * kNumStates);
  constexpr double kInf = 1e300;
  std::array<double, kNumStates> metric;
  viterbi_forward<double>(
      steps, kInf,
      [&llrs](std::size_t step, std::array<double, 4>& bm) {
        // Correlation metric: hypothesizing bit 1 against a positive
        // (bit-0-favoring) LLR costs that LLR, and vice versa.
        const double l0 = llrs[2 * step];
        const double l1 = llrs[2 * step + 1];
        bm[0] = -l0 - l1;
        bm[1] = -l0 + l1;
        bm[2] = l0 - l1;
        bm[3] = l0 + l1;
      },
      survivors.data(), metric);
  std::vector<std::uint8_t> out(
      ConvolutionalCode::decoded_length(llrs.size(), terminated));
  viterbi_traceback(survivors.data(), steps, terminated, metric, out);
  return out;
}

}  // namespace acorn::baseband::reference
