#include "baseband/sdm.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace acorn::baseband {

Cx mimo_determinant(const Mimo2x2& h) {
  return h[0][0] * h[1][1] - h[0][1] * h[1][0];
}

std::array<Cx, 2> zf_detect(const Mimo2x2& h, Cx rx0, Cx rx1) {
  const Cx det = mimo_determinant(h);
  if (std::abs(det) < 1e-12) {
    throw std::domain_error("singular MIMO channel");
  }
  // H^{-1} = 1/det * [ h11 -h01; -h10 h00 ].
  const Cx x0 = (h[1][1] * rx0 - h[0][1] * rx1) / det;
  const Cx x1 = (-h[1][0] * rx0 + h[0][0] * rx1) / det;
  return {x0, x1};
}

std::array<double, 2> zf_noise_amplification(const Mimo2x2& h) {
  const Cx det = mimo_determinant(h);
  const double d2 = std::norm(det);
  if (d2 < 1e-24) {
    return {std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  }
  // Rows of H^{-1}: (h11, -h01)/det and (-h10, h00)/det.
  const double row0 = (std::norm(h[1][1]) + std::norm(h[0][1])) / d2;
  const double row1 = (std::norm(h[1][0]) + std::norm(h[0][0])) / d2;
  return {row0, row1};
}

std::array<Cx, 2> mmse_detect(const Mimo2x2& h, Cx rx0, Cx rx1,
                              double noise_var) {
  if (noise_var < 0.0) throw std::invalid_argument("negative noise_var");
  // A = H^H H + sigma^2 I (2x2 Hermitian), b = H^H y.
  const Cx a00 = std::conj(h[0][0]) * h[0][0] +
                 std::conj(h[1][0]) * h[1][0] + noise_var;
  const Cx a01 = std::conj(h[0][0]) * h[0][1] + std::conj(h[1][0]) * h[1][1];
  const Cx a10 = std::conj(a01);
  const Cx a11 = std::conj(h[0][1]) * h[0][1] +
                 std::conj(h[1][1]) * h[1][1] + noise_var;
  const Cx b0 = std::conj(h[0][0]) * rx0 + std::conj(h[1][0]) * rx1;
  const Cx b1 = std::conj(h[0][1]) * rx0 + std::conj(h[1][1]) * rx1;
  const Cx det = a00 * a11 - a01 * a10;
  if (std::abs(det) < 1e-18) {
    // Only possible when H == 0 and noise_var == 0: nothing to detect.
    return {Cx{}, Cx{}};
  }
  return {(a11 * b0 - a01 * b1) / det, (-a10 * b0 + a00 * b1) / det};
}

SdmStreams sdm_split(std::span<const Cx> symbols) {
  SdmStreams out;
  const std::size_t n = (symbols.size() + 1) / 2;
  out.stream0.reserve(n);
  out.stream1.reserve(n);
  for (std::size_t i = 0; i < symbols.size(); i += 2) {
    out.stream0.push_back(symbols[i]);
    out.stream1.push_back(i + 1 < symbols.size() ? symbols[i + 1] : Cx{});
  }
  return out;
}

std::vector<Cx> sdm_merge(std::span<const Cx> stream0,
                          std::span<const Cx> stream1) {
  if (stream0.size() != stream1.size()) {
    throw std::invalid_argument("stream length mismatch");
  }
  std::vector<Cx> out;
  out.reserve(stream0.size() * 2);
  for (std::size_t i = 0; i < stream0.size(); ++i) {
    out.push_back(stream0[i]);
    out.push_back(stream1[i]);
  }
  return out;
}

}  // namespace acorn::baseband
