// The 802.11 frame-synchronous scrambler: a 7-bit LFSR with polynomial
// x^7 + x^4 + 1 whitens the payload so the OFDM waveform has no strong
// spectral lines regardless of content. Self-inverse: descrambling is
// scrambling with the same seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace acorn::baseband {

class Scrambler {
 public:
  /// `seed` is the 7-bit initial LFSR state; must be nonzero (the
  /// standard picks a pseudo-random nonzero seed per frame).
  explicit Scrambler(std::uint8_t seed = 0x5D);

  /// Next keystream bit.
  std::uint8_t next_bit();

  /// Scramble (or descramble) a bitstream. Resets nothing: consecutive
  /// calls continue the keystream.
  std::vector<std::uint8_t> process(std::span<const std::uint8_t> bits);

  /// Allocation-free variant: `out.size()` must equal `bits.size()`.
  /// In-place operation (out aliasing bits) is fine.
  void process_into(std::span<const std::uint8_t> bits,
                    std::span<std::uint8_t> out);

  /// Reset the LFSR to a seed.
  void reset(std::uint8_t seed);

 private:
  std::uint8_t state_;
};

/// One-shot helpers (fresh scrambler per call).
std::vector<std::uint8_t> scramble(std::span<const std::uint8_t> bits,
                                   std::uint8_t seed = 0x5D);
inline std::vector<std::uint8_t> descramble(
    std::span<const std::uint8_t> bits, std::uint8_t seed = 0x5D) {
  return scramble(bits, seed);
}

}  // namespace acorn::baseband
