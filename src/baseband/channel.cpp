#include "baseband/channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace acorn::baseband {

FadingChannel::FadingChannel(const ChannelConfig& config, util::Rng& rng)
    : config_(config) {
  if (config_.num_taps < 1) throw std::invalid_argument("num_taps < 1");
  if (config_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("sample_rate_hz <= 0");
  }
  redraw(rng);
}

void FadingChannel::redraw(util::Rng& rng) {
  const int L = config_.num_taps;
  // Exponential PDP weights are a closed form of l — no scratch needed.
  const auto pdp = [&](int l) {
    return L == 1 ? 1.0
                  : std::exp(-static_cast<double>(l) /
                             config_.delay_spread_samples);
  };
  double total = 0.0;
  for (int l = 0; l < L; ++l) total += pdp(l);
  const double gain = util::db_to_lin(-config_.path_loss_db);
  taps_.resize(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) {
    const double power = gain * pdp(l) / total;
    if (config_.rayleigh) {
      // CN(0, power): each component N(0, power/2).
      const double s = std::sqrt(power / 2.0);
      taps_[static_cast<std::size_t>(l)] = Cx(rng.normal(0.0, s),
                                              rng.normal(0.0, s));
    } else {
      taps_[static_cast<std::size_t>(l)] = Cx(std::sqrt(power), 0.0);
    }
  }
}

double FadingChannel::noise_variance_mw() const {
  const double psd_dbm =
      config_.noise_psd_dbm_per_hz + config_.noise_figure_db;
  return util::dbm_to_mw(psd_dbm) * config_.sample_rate_hz;
}

void FadingChannel::propagate_into(std::span<const Cx> tx,
                                   std::span<Cx> out) const {
  if (out.size() != tx.size() + taps_.size() - 1) {
    throw std::invalid_argument("output size must be tx + taps - 1");
  }
  // Flat-double multiply-accumulate through raw pointers: the
  // std::complex operator* NaN fix-up, 16-byte complex loads/stores and
  // span indexing all keep the compiler from tightening this loop, and
  // it runs once per sample per tap. Tap-major order keeps every pass a
  // contiguous stream.
  double* const o = reinterpret_cast<double*>(out.data());
  const double* const x = reinterpret_cast<const double*>(tx.data());
  const Cx* const h = taps_.data();
  const std::size_t nt = taps_.size();
  const std::size_t n_tx = tx.size();
  {
    const double hr = h[0].real();
    const double hi = h[0].imag();
    for (std::size_t n = 0; n < n_tx; ++n) {
      const double xr = x[2 * n];
      const double xi = x[2 * n + 1];
      o[2 * n] = xr * hr - xi * hi;
      o[2 * n + 1] = xr * hi + xi * hr;
    }
  }
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(n_tx), out.end(),
            Cx{});
  for (std::size_t l = 1; l < nt; ++l) {
    const double hr = h[l].real();
    const double hi = h[l].imag();
    double* const ol = o + 2 * l;
    for (std::size_t n = 0; n < n_tx; ++n) {
      const double xr = x[2 * n];
      const double xi = x[2 * n + 1];
      ol[2 * n] += xr * hr - xi * hi;
      ol[2 * n + 1] += xr * hi + xi * hr;
    }
  }
}

std::vector<Cx> FadingChannel::propagate(std::span<const Cx> tx) const {
  std::vector<Cx> out(tx.size() + taps_.size() - 1);
  propagate_into(tx, out);
  return out;
}

void FadingChannel::transmit_into(std::span<const Cx> tx, std::span<Cx> out,
                                  util::Rng& rng) const {
  propagate_into(tx, out);
  add_awgn(out, noise_variance_mw(), rng);
}

std::vector<Cx> FadingChannel::transmit(std::span<const Cx> tx,
                                        util::Rng& rng) const {
  std::vector<Cx> out = propagate(tx);
  add_awgn(out, noise_variance_mw(), rng);
  return out;
}

void FadingChannel::frequency_response_into(std::span<Cx> out) const {
  if (!is_power_of_two(out.size())) {
    throw std::invalid_argument("fft_size must be a power of two");
  }
  if (taps_.size() > out.size()) {
    throw std::invalid_argument("more taps than FFT bins");
  }
  std::copy(taps_.begin(), taps_.end(), out.begin());
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(taps_.size()),
            out.end(), Cx{});
  fft_in_place(out);
}

std::vector<Cx> FadingChannel::frequency_response(std::size_t fft_size) const {
  std::vector<Cx> padded(fft_size);
  frequency_response_into(padded);
  return padded;
}

void add_awgn(std::span<Cx> samples, double variance_mw, util::Rng& rng) {
  if (variance_mw < 0.0) throw std::invalid_argument("negative variance");
  const double s = std::sqrt(variance_mw / 2.0);
  // Batched ziggurat draws (fill_normals) rather than per-sample
  // Box-Muller: this loop consumes two Gaussians per received sample and
  // dominates the non-FFT cost of every Monte-Carlo sweep. The chunk
  // buffer lives on the stack so the path stays allocation-free.
  constexpr std::size_t kChunk = 64;  // samples per batch
  double noise[2 * kChunk];
  double* d = reinterpret_cast<double*>(samples.data());
  std::size_t remaining = samples.size();
  while (remaining > 0) {
    const std::size_t take = std::min(kChunk, remaining);
    rng.fill_normals(std::span<double>(noise, 2 * take));
    for (std::size_t i = 0; i < 2 * take; ++i) d[i] += s * noise[i];
    d += 2 * take;
    remaining -= take;
  }
}

}  // namespace acorn::baseband
