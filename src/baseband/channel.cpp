#include "baseband/channel.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace acorn::baseband {

FadingChannel::FadingChannel(const ChannelConfig& config, util::Rng& rng)
    : config_(config) {
  if (config_.num_taps < 1) throw std::invalid_argument("num_taps < 1");
  if (config_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("sample_rate_hz <= 0");
  }
  redraw(rng);
}

void FadingChannel::redraw(util::Rng& rng) {
  const int L = config_.num_taps;
  std::vector<double> pdp(static_cast<std::size_t>(L));
  double total = 0.0;
  for (int l = 0; l < L; ++l) {
    pdp[static_cast<std::size_t>(l)] =
        L == 1 ? 1.0 : std::exp(-static_cast<double>(l) /
                                config_.delay_spread_samples);
    total += pdp[static_cast<std::size_t>(l)];
  }
  const double gain = util::db_to_lin(-config_.path_loss_db);
  taps_.assign(static_cast<std::size_t>(L), Cx{});
  for (int l = 0; l < L; ++l) {
    const double power = gain * pdp[static_cast<std::size_t>(l)] / total;
    if (config_.rayleigh) {
      // CN(0, power): each component N(0, power/2).
      const double s = std::sqrt(power / 2.0);
      taps_[static_cast<std::size_t>(l)] = Cx(rng.normal(0.0, s),
                                              rng.normal(0.0, s));
    } else {
      taps_[static_cast<std::size_t>(l)] = Cx(std::sqrt(power), 0.0);
    }
  }
}

double FadingChannel::noise_variance_mw() const {
  const double psd_dbm =
      config_.noise_psd_dbm_per_hz + config_.noise_figure_db;
  return util::dbm_to_mw(psd_dbm) * config_.sample_rate_hz;
}

std::vector<Cx> FadingChannel::propagate(std::span<const Cx> tx) const {
  std::vector<Cx> out(tx.size() + taps_.size() - 1, Cx{});
  for (std::size_t n = 0; n < tx.size(); ++n) {
    for (std::size_t l = 0; l < taps_.size(); ++l) {
      out[n + l] += tx[n] * taps_[l];
    }
  }
  return out;
}

std::vector<Cx> FadingChannel::transmit(std::span<const Cx> tx,
                                        util::Rng& rng) const {
  std::vector<Cx> out = propagate(tx);
  add_awgn(out, noise_variance_mw(), rng);
  return out;
}

std::vector<Cx> FadingChannel::frequency_response(std::size_t fft_size) const {
  if (!is_power_of_two(fft_size)) {
    throw std::invalid_argument("fft_size must be a power of two");
  }
  if (taps_.size() > fft_size) {
    throw std::invalid_argument("more taps than FFT bins");
  }
  std::vector<Cx> padded(fft_size, Cx{});
  std::copy(taps_.begin(), taps_.end(), padded.begin());
  fft_in_place(padded);
  return padded;
}

void add_awgn(std::span<Cx> samples, double variance_mw, util::Rng& rng) {
  if (variance_mw < 0.0) throw std::invalid_argument("negative variance");
  const double s = std::sqrt(variance_mw / 2.0);
  for (auto& x : samples) {
    x += Cx(rng.normal(0.0, s), rng.normal(0.0, s));
  }
}

}  // namespace acorn::baseband
