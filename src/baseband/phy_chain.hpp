// The full coded 802.11n PHY chain, end to end at sample level:
//
//   payload bits -> scrambler -> K=7 convolutional encoder (terminated)
//   -> puncturing -> per-symbol HT block interleaving -> Gray QAM
//   mapping -> OFDM with cyclic prefix -> multipath + AWGN channel ->
//   genie-equalized OFDM demodulation -> hard demapping ->
//   deinterleaving -> depuncturing -> Viterbi decoding -> descrambler ->
//   payload bits.
//
// This is the "commodity 802.11n card" the paper measures in §3.2 —
// coded PER at a given MCS and width — built from the same primitives as
// the uncoded WARP chain. The calibration bench compares what this chain
// *measures* against what phy::LinkModel *predicts*.
//
// Scope: single spatial stream (MCS 0-7), SISO antenna path. The MIMO
// gains of STBC/SDM live in the link abstraction.
#pragma once

#include <cstdint>

#include "baseband/channel.hpp"
#include "phy/mcs.hpp"
#include "util/rng.hpp"

namespace acorn::baseband {

struct PhyChainConfig {
  /// MCS 0-7 (single stream).
  int mcs_index = 0;
  phy::ChannelWidth width = phy::ChannelWidth::k20MHz;
  int packet_bytes = 1500;
  double tx_dbm = 10.0;
  double path_loss_db = 90.0;
  double noise_psd_dbm_per_hz = -174.0;
  double noise_figure_db = 0.0;
  bool rayleigh = true;
  int num_taps = 3;
  /// Soft-decision decoding: max-log LLR demapping (with per-subcarrier
  /// noise variances from the genie CSI) feeding a soft Viterbi. Default
  /// is hard decisions, matching the analytic model's hard-decision
  /// union bound.
  bool soft_decision = false;
  /// Worker threads for the packet sweep; 1 = serial, 0 = one per
  /// hardware thread. Statistics are bit-identical at any thread count.
  int num_threads = 1;
};

struct PhyChainResult {
  std::int64_t bits_sent = 0;
  std::int64_t bit_errors = 0;  // residual errors after Viterbi
  std::int64_t packets_sent = 0;
  std::int64_t packet_errors = 0;
  double mean_snr_db = 0.0;  // per-subcarrier, from genie CSI

  double ber() const {
    return bits_sent == 0 ? 0.0
                          : static_cast<double>(bit_errors) /
                                static_cast<double>(bits_sent);
  }
  double per() const {
    return packets_sent == 0 ? 0.0
                             : static_cast<double>(packet_errors) /
                                   static_cast<double>(packets_sent);
  }
};

/// Transmit one packet's bits through the chain; returns the decoded
/// payload bits (same length as the input).
std::vector<std::uint8_t> phy_chain_roundtrip(
    const PhyChainConfig& config, std::span<const std::uint8_t> bits,
    FadingChannel& channel, util::Rng& rng);

/// Run `packets` random packets and collect error statistics.
PhyChainResult run_phy_chain(const PhyChainConfig& config, int packets,
                             util::Rng& rng);

}  // namespace acorn::baseband
