#include "baseband/bermac.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "baseband/qpsk.hpp"
#include "baseband/stbc.hpp"
#include "util/units.hpp"

namespace acorn::baseband {

namespace {

std::vector<std::uint8_t> random_bits(int bytes, util::Rng& rng) {
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(bytes) * 8);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  return bits;
}

ChannelConfig channel_config(const BermacConfig& cfg) {
  ChannelConfig ch;
  ch.sample_rate_hz = phy::width_hz(cfg.width);
  ch.noise_psd_dbm_per_hz = cfg.noise_psd_dbm_per_hz;
  ch.noise_figure_db = cfg.noise_figure_db;
  ch.path_loss_db = cfg.path_loss_db;
  ch.num_taps = cfg.num_taps;
  ch.rayleigh = cfg.rayleigh;
  return ch;
}

// Pad a symbol stream so it fills an even number of OFDM symbols (STBC
// pairs OFDM symbols).
std::vector<Cx> pad_to_even_ofdm(std::vector<Cx> symbols, const Ofdm& ofdm) {
  const auto nd = static_cast<std::size_t>(ofdm.num_data_subcarriers());
  std::size_t n_sym = ofdm.num_ofdm_symbols(symbols.size());
  if (n_sym % 2 == 1) ++n_sym;
  symbols.resize(n_sym * nd, Cx{});
  return symbols;
}

struct PacketOutcome {
  std::int64_t bit_errors = 0;
  double snr_linear = 0.0;  // mean per-subcarrier SNR of this packet
};

// SISO chain: modulate -> channel -> genie-equalized demodulate.
PacketOutcome run_siso_packet(const BermacConfig& cfg, const Ofdm& ofdm,
                              std::span<const std::uint8_t> bits,
                              FadingChannel& channel, util::Rng& rng,
                              BermacResult& result) {
  const double tx_mw = util::dbm_to_mw(cfg.tx_dbm);
  const std::vector<Cx> data_syms =
      cfg.dqpsk ? dqpsk_modulate(bits) : qpsk_modulate(bits);
  const std::vector<Cx> tx = ofdm.modulate(data_syms, tx_mw);
  channel.redraw(rng);
  const std::vector<Cx> rx = channel.transmit(tx, rng);
  const std::vector<Cx> h =
      channel.frequency_response(static_cast<std::size_t>(ofdm.fft_size()));
  const std::vector<Cx> eq =
      ofdm.demodulate(rx, h, data_syms.size(), tx_mw);
  const std::vector<std::uint8_t> decoded =
      cfg.dqpsk ? dqpsk_demodulate(eq) : qpsk_demodulate(eq);

  PacketOutcome out;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (decoded[i] != bits[i]) ++out.bit_errors;
  }
  // Per-subcarrier SNR: amp^2 |H_k|^2 / (N * sigma^2); the FFT multiplies
  // white noise variance by N.
  const double amp = ofdm.subcarrier_amplitude(tx_mw);
  const double post_fft_noise =
      channel.noise_variance_mw() * ofdm.fft_size();
  double snr_sum = 0.0;
  for (int bin : ofdm.data_bins()) {
    snr_sum += amp * amp * std::norm(h[static_cast<std::size_t>(bin)]) /
               post_fft_noise;
  }
  out.snr_linear = snr_sum / ofdm.num_data_subcarriers();

  if (result.constellation.size() <
      static_cast<std::size_t>(cfg.capture_symbols)) {
    for (std::size_t i = 0; i < eq.size(); ++i) {
      if (result.constellation.size() >=
          static_cast<std::size_t>(cfg.capture_symbols)) {
        break;
      }
      result.constellation.push_back(eq[i]);
      result.evm_rms += std::norm(eq[i] - data_syms[i]);
    }
  }
  return out;
}

// 2x2 Alamouti STBC chain: symbols are paired per subcarrier across two
// consecutive OFDM symbols; each of the four spatial paths is an
// independent fading realization with the same path loss.
PacketOutcome run_stbc_packet(const BermacConfig& cfg, const Ofdm& ofdm,
                              std::span<const std::uint8_t> bits,
                              std::array<FadingChannel, 4>& paths,
                              util::Rng& rng, BermacResult& result) {
  const double tx_mw = util::dbm_to_mw(cfg.tx_dbm);
  const double per_antenna_mw = tx_mw / 2.0;  // split across 2 TX antennas
  std::vector<Cx> data_syms =
      cfg.dqpsk ? dqpsk_modulate(bits) : qpsk_modulate(bits);
  const std::size_t n_data = data_syms.size();
  data_syms = pad_to_even_ofdm(std::move(data_syms), ofdm);
  const auto nd = static_cast<std::size_t>(ofdm.num_data_subcarriers());
  const std::size_t n_sym = data_syms.size() / nd;  // even

  // Build the two antenna streams: for the OFDM-symbol pair (t, t+1) and
  // subcarrier k, Alamouti sends (s0, -s1*) on antenna A and (s1, s0*) on
  // antenna B, where s0 = data[t][k], s1 = data[t+1][k].
  std::vector<Cx> stream_a(data_syms.size());
  std::vector<Cx> stream_b(data_syms.size());
  for (std::size_t t = 0; t < n_sym; t += 2) {
    for (std::size_t k = 0; k < nd; ++k) {
      const Cx s0 = data_syms[t * nd + k];
      const Cx s1 = data_syms[(t + 1) * nd + k];
      stream_a[t * nd + k] = s0;
      stream_a[(t + 1) * nd + k] = -std::conj(s1);
      stream_b[t * nd + k] = s1;
      stream_b[(t + 1) * nd + k] = std::conj(s0);
    }
  }

  const std::vector<Cx> tx_a = ofdm.modulate(stream_a, per_antenna_mw);
  const std::vector<Cx> tx_b = ofdm.modulate(stream_b, per_antenna_mw);

  for (auto& path : paths) path.redraw(rng);
  // paths[0]=A->a, paths[1]=A->b, paths[2]=B->a, paths[3]=B->b.
  std::vector<Cx> rx_a = paths[0].propagate(tx_a);
  const std::vector<Cx> ba = paths[2].propagate(tx_b);
  for (std::size_t i = 0; i < rx_a.size() && i < ba.size(); ++i) {
    rx_a[i] += ba[i];
  }
  add_awgn(rx_a, paths[0].noise_variance_mw(), rng);

  std::vector<Cx> rx_b = paths[1].propagate(tx_a);
  const std::vector<Cx> bb = paths[3].propagate(tx_b);
  for (std::size_t i = 0; i < rx_b.size() && i < bb.size(); ++i) {
    rx_b[i] += bb[i];
  }
  add_awgn(rx_b, paths[1].noise_variance_mw(), rng);

  const auto n = static_cast<std::size_t>(ofdm.fft_size());
  const std::vector<Cx> h_aa = paths[0].frequency_response(n);
  const std::vector<Cx> h_ab = paths[1].frequency_response(n);
  const std::vector<Cx> h_ba = paths[2].frequency_response(n);
  const std::vector<Cx> h_bb = paths[3].frequency_response(n);

  const auto bins_a = ofdm.extract_bins(rx_a, n_sym);
  const auto bins_b = ofdm.extract_bins(rx_b, n_sym);
  const double amp = ofdm.subcarrier_amplitude(per_antenna_mw);

  std::vector<Cx> recovered(data_syms.size());
  const auto data_bins = ofdm.data_bins();
  for (std::size_t t = 0; t < n_sym; t += 2) {
    for (std::size_t k = 0; k < nd; ++k) {
      const auto bin = static_cast<std::size_t>(data_bins[k]);
      const StbcDecoded d = alamouti_combine(
          bins_a[t][k], bins_a[t + 1][k], bins_b[t][k], bins_b[t + 1][k],
          h_aa[bin], h_ab[bin], h_ba[bin], h_bb[bin]);
      const double g = d.gain > 1e-12 ? d.gain : 1.0;
      recovered[t * nd + k] = d.s0 / (g * amp);
      recovered[(t + 1) * nd + k] = d.s1 / (g * amp);
    }
  }
  recovered.resize(n_data);

  const std::vector<std::uint8_t> decoded =
      cfg.dqpsk ? dqpsk_demodulate(recovered) : qpsk_demodulate(recovered);
  PacketOutcome out;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (decoded[i] != bits[i]) ++out.bit_errors;
  }

  // Post-combining per-subcarrier SNR: amp^2 * sum|H|^2 / (N * sigma^2).
  const double post_fft_noise =
      paths[0].noise_variance_mw() * ofdm.fft_size();
  double snr_sum = 0.0;
  for (std::size_t k = 0; k < nd; ++k) {
    const auto bin = static_cast<std::size_t>(data_bins[k]);
    const double g = std::norm(h_aa[bin]) + std::norm(h_ab[bin]) +
                     std::norm(h_ba[bin]) + std::norm(h_bb[bin]);
    snr_sum += amp * amp * g / post_fft_noise;
  }
  out.snr_linear = snr_sum / static_cast<double>(nd);

  if (result.constellation.size() <
      static_cast<std::size_t>(cfg.capture_symbols)) {
    for (std::size_t i = 0; i < recovered.size(); ++i) {
      if (result.constellation.size() >=
          static_cast<std::size_t>(cfg.capture_symbols)) {
        break;
      }
      result.constellation.push_back(recovered[i]);
      result.evm_rms += std::norm(recovered[i] - data_syms[i]);
    }
  }
  return out;
}

}  // namespace

BermacResult run_bermac(const BermacConfig& config, util::Rng& rng) {
  if (config.packets <= 0 || config.packet_bytes <= 0) {
    throw std::invalid_argument("packets and packet_bytes must be positive");
  }
  const Ofdm ofdm(config.width);
  BermacResult result;

  const ChannelConfig ch = channel_config(config);
  FadingChannel siso(ch, rng);
  std::array<FadingChannel, 4> paths = {FadingChannel(ch, rng),
                                        FadingChannel(ch, rng),
                                        FadingChannel(ch, rng),
                                        FadingChannel(ch, rng)};

  double snr_sum_linear = 0.0;
  for (int p = 0; p < config.packets; ++p) {
    const std::vector<std::uint8_t> bits =
        random_bits(config.packet_bytes, rng);
    const PacketOutcome out =
        config.use_stbc
            ? run_stbc_packet(config, ofdm, bits, paths, rng, result)
            : run_siso_packet(config, ofdm, bits, siso, rng, result);
    result.bits_sent += static_cast<std::int64_t>(bits.size());
    result.bit_errors += out.bit_errors;
    result.packets_sent += 1;
    if (out.bit_errors > 0) result.packet_errors += 1;
    snr_sum_linear += out.snr_linear;
  }
  result.mean_snr_db = util::lin_to_db(
      snr_sum_linear / static_cast<double>(config.packets));
  if (!result.constellation.empty()) {
    result.evm_rms = std::sqrt(result.evm_rms /
                               static_cast<double>(result.constellation.size()));
  }
  return result;
}

}  // namespace acorn::baseband
