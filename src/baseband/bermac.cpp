#include "baseband/bermac.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "baseband/engine.hpp"
#include "baseband/qpsk.hpp"
#include "baseband/stbc.hpp"
#include "util/units.hpp"

namespace acorn::baseband {

namespace {

ChannelConfig channel_config(const BermacConfig& cfg) {
  ChannelConfig ch;
  ch.sample_rate_hz = phy::width_hz(cfg.width);
  ch.noise_psd_dbm_per_hz = cfg.noise_psd_dbm_per_hz;
  ch.noise_figure_db = cfg.noise_figure_db;
  ch.path_loss_db = cfg.path_loss_db;
  ch.num_taps = cfg.num_taps;
  ch.rayleigh = cfg.rayleigh;
  return ch;
}

// Channels are redrawn at the top of every packet from that packet's own
// RNG stream, so the construction-time realization never reaches a
// result — any throwaway seed will do.
FadingChannel make_channel(const ChannelConfig& ch) {
  util::Rng scratch_rng(0);
  return FadingChannel(ch, scratch_rng);
}

struct PacketStats {
  std::int64_t bit_errors = 0;
  double snr_linear = 0.0;  // mean per-subcarrier SNR of this packet
  double evm_sq = 0.0;      // sum |eq - ref|^2 over captured symbols
};

// Everything one worker needs for the SISO chain, sized once so the
// per-packet loop is allocation-free.
struct SisoCtx {
  SisoCtx(const BermacConfig& cfg, const Ofdm& ofdm)
      : channel(make_channel(channel_config(cfg))) {
    const auto n_bits = static_cast<std::size_t>(cfg.packet_bytes) * 8;
    const std::size_t n_syms = (n_bits + 1) / 2;
    const std::size_t n_ofdm = ofdm.num_ofdm_symbols(n_syms);
    const auto slen = static_cast<std::size_t>(ofdm.symbol_length());
    const auto fft = static_cast<std::size_t>(ofdm.fft_size());
    bits.resize(n_bits);
    decoded.resize(2 * n_syms);
    data_syms.resize(n_syms);
    eq.resize(n_syms);
    tx.resize(n_ofdm * slen);
    rx.resize(n_ofdm * slen + static_cast<std::size_t>(cfg.num_taps) - 1);
    h.resize(fft);
    scratch.resize(fft);
  }

  FadingChannel channel;
  std::vector<std::uint8_t> bits;
  std::vector<std::uint8_t> decoded;
  std::vector<Cx> data_syms;
  std::vector<Cx> eq;
  std::vector<Cx> tx;
  std::vector<Cx> rx;
  std::vector<Cx> h;
  std::vector<Cx> scratch;
};

// SISO chain: modulate -> channel -> genie-equalized demodulate.
// `capture` is this packet's slice of the shared constellation buffer
// (possibly empty).
void run_siso_packet(const BermacConfig& cfg, const Ofdm& ofdm,
                     SisoCtx& ctx, util::Rng& rng, PacketStats& stats,
                     std::span<Cx> capture) {
  const double tx_mw = util::dbm_to_mw(cfg.tx_dbm);
  rng.fill_bits(ctx.bits);
  if (cfg.dqpsk) {
    dqpsk_modulate_into(ctx.bits, ctx.data_syms);
  } else {
    qpsk_modulate_into(ctx.bits, ctx.data_syms);
  }
  ofdm.modulate_into(ctx.data_syms, tx_mw, ctx.tx);
  ctx.channel.redraw(rng);
  ctx.channel.transmit_into(ctx.tx, ctx.rx, rng);
  ctx.channel.frequency_response_into(ctx.h);
  ofdm.demodulate_into(ctx.rx, ctx.h, ctx.eq, tx_mw, ctx.scratch);
  if (cfg.dqpsk) {
    dqpsk_demodulate_into(ctx.eq, ctx.decoded);
  } else {
    qpsk_demodulate_into(ctx.eq, ctx.decoded);
  }

  stats.bit_errors += count_bit_errors(ctx.bits, ctx.decoded);
  // Per-subcarrier SNR: amp^2 |H_k|^2 / (N * sigma^2); the FFT multiplies
  // white noise variance by N.
  const double amp = ofdm.subcarrier_amplitude(tx_mw);
  const double post_fft_noise =
      ctx.channel.noise_variance_mw() * ofdm.fft_size();
  double snr_sum = 0.0;
  for (int bin : ofdm.data_bins()) {
    snr_sum += amp * amp * std::norm(ctx.h[static_cast<std::size_t>(bin)]) /
               post_fft_noise;
  }
  stats.snr_linear = snr_sum / ofdm.num_data_subcarriers();

  for (std::size_t i = 0; i < capture.size(); ++i) {
    capture[i] = ctx.eq[i];
    stats.evm_sq += std::norm(ctx.eq[i] - ctx.data_syms[i]);
  }
}

// Worker state for the 2x2 Alamouti chain: four independent fading paths
// with the same path loss, plus the padded symbol grids and the per-
// antenna waveforms.
struct StbcCtx {
  StbcCtx(const BermacConfig& cfg, const Ofdm& ofdm)
      : paths{make_channel(channel_config(cfg)),
              make_channel(channel_config(cfg)),
              make_channel(channel_config(cfg)),
              make_channel(channel_config(cfg))} {
    const auto n_bits = static_cast<std::size_t>(cfg.packet_bytes) * 8;
    n_data = (n_bits + 1) / 2;
    const auto nd = static_cast<std::size_t>(ofdm.num_data_subcarriers());
    n_sym = ofdm.num_ofdm_symbols(n_data);
    if (n_sym % 2 == 1) ++n_sym;  // STBC pairs OFDM symbols
    const std::size_t padded = n_sym * nd;
    const auto slen = static_cast<std::size_t>(ofdm.symbol_length());
    const auto fft = static_cast<std::size_t>(ofdm.fft_size());
    const std::size_t rx_len =
        n_sym * slen + static_cast<std::size_t>(cfg.num_taps) - 1;
    bits.resize(n_bits);
    decoded.resize(2 * n_data);
    data_syms.assign(padded, Cx{});  // tail pad beyond n_data stays zero
    stream_a.resize(padded);
    stream_b.resize(padded);
    recovered.resize(n_data);
    tx_a.resize(n_sym * slen);
    tx_b.resize(n_sym * slen);
    rx_a.resize(rx_len);
    rx_b.resize(rx_len);
    cross.resize(rx_len);
    for (auto& h : freq) h.resize(fft);
    bins_a.resize(padded);
    bins_b.resize(padded);
    scratch.resize(fft);
  }

  std::array<FadingChannel, 4> paths;
  std::size_t n_data = 0;  // payload constellation points
  std::size_t n_sym = 0;   // OFDM symbols after even-padding
  std::vector<std::uint8_t> bits;
  std::vector<std::uint8_t> decoded;
  std::vector<Cx> data_syms;  // padded grid, zeros beyond n_data
  std::vector<Cx> stream_a;
  std::vector<Cx> stream_b;
  std::vector<Cx> recovered;
  std::vector<Cx> tx_a;
  std::vector<Cx> tx_b;
  std::vector<Cx> rx_a;
  std::vector<Cx> rx_b;
  std::vector<Cx> cross;  // second propagation before superposition
  std::array<std::vector<Cx>, 4> freq;  // h_aa, h_ab, h_ba, h_bb
  std::vector<Cx> bins_a;
  std::vector<Cx> bins_b;
  std::vector<Cx> scratch;
};

// 2x2 Alamouti STBC chain: symbols are paired per subcarrier across two
// consecutive OFDM symbols; each of the four spatial paths is an
// independent fading realization with the same path loss.
void run_stbc_packet(const BermacConfig& cfg, const Ofdm& ofdm,
                     StbcCtx& ctx, util::Rng& rng, PacketStats& stats,
                     std::span<Cx> capture) {
  const double tx_mw = util::dbm_to_mw(cfg.tx_dbm);
  const double per_antenna_mw = tx_mw / 2.0;  // split across 2 TX antennas
  rng.fill_bits(ctx.bits);
  const std::span<Cx> payload(ctx.data_syms.data(), ctx.n_data);
  if (cfg.dqpsk) {
    dqpsk_modulate_into(ctx.bits, payload);
  } else {
    qpsk_modulate_into(ctx.bits, payload);
  }
  const auto nd = static_cast<std::size_t>(ofdm.num_data_subcarriers());
  const std::size_t n_sym = ctx.n_sym;  // even

  // Build the two antenna streams: for the OFDM-symbol pair (t, t+1) and
  // subcarrier k, Alamouti sends (s0, -s1*) on antenna A and (s1, s0*) on
  // antenna B, where s0 = data[t][k], s1 = data[t+1][k].
  for (std::size_t t = 0; t < n_sym; t += 2) {
    for (std::size_t k = 0; k < nd; ++k) {
      const Cx s0 = ctx.data_syms[t * nd + k];
      const Cx s1 = ctx.data_syms[(t + 1) * nd + k];
      ctx.stream_a[t * nd + k] = s0;
      ctx.stream_a[(t + 1) * nd + k] = -std::conj(s1);
      ctx.stream_b[t * nd + k] = s1;
      ctx.stream_b[(t + 1) * nd + k] = std::conj(s0);
    }
  }

  ofdm.modulate_into(ctx.stream_a, per_antenna_mw, ctx.tx_a);
  ofdm.modulate_into(ctx.stream_b, per_antenna_mw, ctx.tx_b);

  for (auto& path : ctx.paths) path.redraw(rng);
  // paths[0]=A->a, paths[1]=A->b, paths[2]=B->a, paths[3]=B->b.
  ctx.paths[0].propagate_into(ctx.tx_a, ctx.rx_a);
  ctx.paths[2].propagate_into(ctx.tx_b, ctx.cross);
  for (std::size_t i = 0; i < ctx.rx_a.size(); ++i) {
    ctx.rx_a[i] += ctx.cross[i];
  }
  add_awgn(ctx.rx_a, ctx.paths[0].noise_variance_mw(), rng);

  ctx.paths[1].propagate_into(ctx.tx_a, ctx.rx_b);
  ctx.paths[3].propagate_into(ctx.tx_b, ctx.cross);
  for (std::size_t i = 0; i < ctx.rx_b.size(); ++i) {
    ctx.rx_b[i] += ctx.cross[i];
  }
  add_awgn(ctx.rx_b, ctx.paths[1].noise_variance_mw(), rng);

  for (std::size_t p = 0; p < 4; ++p) {
    ctx.paths[p].frequency_response_into(ctx.freq[p]);
  }
  const auto& h_aa = ctx.freq[0];
  const auto& h_ab = ctx.freq[1];
  const auto& h_ba = ctx.freq[2];
  const auto& h_bb = ctx.freq[3];

  ofdm.extract_bins_into(ctx.rx_a, n_sym, ctx.bins_a, ctx.scratch);
  ofdm.extract_bins_into(ctx.rx_b, n_sym, ctx.bins_b, ctx.scratch);
  const double amp = ofdm.subcarrier_amplitude(per_antenna_mw);

  const auto data_bins = ofdm.data_bins();
  for (std::size_t t = 0; t < n_sym; t += 2) {
    for (std::size_t k = 0; k < nd; ++k) {
      const auto bin = static_cast<std::size_t>(data_bins[k]);
      const StbcDecoded d = alamouti_combine(
          ctx.bins_a[t * nd + k], ctx.bins_a[(t + 1) * nd + k],
          ctx.bins_b[t * nd + k], ctx.bins_b[(t + 1) * nd + k],
          h_aa[bin], h_ab[bin], h_ba[bin], h_bb[bin]);
      const double g = d.gain > 1e-12 ? d.gain : 1.0;
      if (t * nd + k < ctx.n_data) {
        ctx.recovered[t * nd + k] = d.s0 / (g * amp);
      }
      if ((t + 1) * nd + k < ctx.n_data) {
        ctx.recovered[(t + 1) * nd + k] = d.s1 / (g * amp);
      }
    }
  }

  if (cfg.dqpsk) {
    dqpsk_demodulate_into(ctx.recovered, ctx.decoded);
  } else {
    qpsk_demodulate_into(ctx.recovered, ctx.decoded);
  }
  stats.bit_errors += count_bit_errors(ctx.bits, ctx.decoded);

  // Post-combining per-subcarrier SNR: amp^2 * sum|H|^2 / (N * sigma^2).
  const double post_fft_noise =
      ctx.paths[0].noise_variance_mw() * ofdm.fft_size();
  double snr_sum = 0.0;
  for (std::size_t k = 0; k < nd; ++k) {
    const auto bin = static_cast<std::size_t>(data_bins[k]);
    const double g = std::norm(h_aa[bin]) + std::norm(h_ab[bin]) +
                     std::norm(h_ba[bin]) + std::norm(h_bb[bin]);
    snr_sum += amp * amp * g / post_fft_noise;
  }
  stats.snr_linear = snr_sum / static_cast<double>(nd);

  for (std::size_t i = 0; i < capture.size(); ++i) {
    capture[i] = ctx.recovered[i];
    stats.evm_sq += std::norm(ctx.recovered[i] - ctx.data_syms[i]);
  }
}

}  // namespace

BermacResult run_bermac(const BermacConfig& config, util::Rng& rng) {
  if (config.packets <= 0 || config.packet_bytes <= 0) {
    throw std::invalid_argument("packets and packet_bytes must be positive");
  }
  const Ofdm ofdm(config.width);
  BermacResult result;

  // One draw from the caller's generator seeds every packet stream; the
  // reduction below runs in packet order. Together these make the result
  // a pure function of (config, rng state) at any thread count.
  const std::uint64_t stream_seed = rng.next_u64();
  const auto packets = static_cast<std::size_t>(config.packets);
  const std::size_t syms_per_packet =
      (static_cast<std::size_t>(config.packet_bytes) * 8 + 1) / 2;
  const std::size_t capture_total =
      std::min(static_cast<std::size_t>(std::max(config.capture_symbols, 0)),
               packets * syms_per_packet);
  result.constellation.resize(capture_total);
  const std::span<Cx> capture_all(result.constellation);

  std::vector<PacketStats> stats(packets);
  const auto capture_slice = [&](std::size_t p) {
    const std::size_t offset = p * syms_per_packet;
    if (offset >= capture_total) return std::span<Cx>{};
    return capture_all.subspan(
        offset, std::min(syms_per_packet, capture_total - offset));
  };

  if (config.use_stbc) {
    parallel_packets(
        packets, config.num_threads,
        [&] { return StbcCtx(config, ofdm); },
        [&](StbcCtx& ctx, std::size_t p) {
          util::Rng prng = util::Rng::derive_stream(stream_seed, p);
          run_stbc_packet(config, ofdm, ctx, prng, stats[p],
                          capture_slice(p));
        });
  } else {
    parallel_packets(
        packets, config.num_threads,
        [&] { return SisoCtx(config, ofdm); },
        [&](SisoCtx& ctx, std::size_t p) {
          util::Rng prng = util::Rng::derive_stream(stream_seed, p);
          run_siso_packet(config, ofdm, ctx, prng, stats[p],
                          capture_slice(p));
        });
  }

  double snr_sum_linear = 0.0;
  double evm_sq = 0.0;
  for (const PacketStats& s : stats) {
    result.bits_sent += static_cast<std::int64_t>(config.packet_bytes) * 8;
    result.bit_errors += s.bit_errors;
    result.packets_sent += 1;
    if (s.bit_errors > 0) result.packet_errors += 1;
    snr_sum_linear += s.snr_linear;
    evm_sq += s.evm_sq;
  }
  result.mean_snr_db = util::lin_to_db(
      snr_sum_linear / static_cast<double>(config.packets));
  if (!result.constellation.empty()) {
    result.evm_rms = std::sqrt(
        evm_sq / static_cast<double>(result.constellation.size()));
  }
  return result;
}

}  // namespace acorn::baseband
