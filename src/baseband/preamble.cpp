#include "baseband/preamble.hpp"

#include <array>
#include <cmath>

namespace acorn::baseband {

namespace {
constexpr std::array<int, 11> kBarker11 = {+1, -1, +1, +1, -1, +1,
                                           +1, +1, -1, -1, -1};
}

std::span<const int> barker11() { return kBarker11; }

std::vector<Cx> make_preamble(int repeats, double amplitude) {
  std::vector<Cx> out;
  out.reserve(static_cast<std::size_t>(repeats) * kBarker11.size());
  for (int r = 0; r < repeats; ++r) {
    for (int chip : kBarker11) out.emplace_back(amplitude * chip, 0.0);
  }
  return out;
}

std::optional<std::size_t> detect_preamble(std::span<const Cx> rx, int repeats,
                                           double threshold) {
  const auto preamble = make_preamble(repeats, 1.0);
  const std::size_t plen = preamble.size();
  if (rx.size() < plen) return std::nullopt;

  double best_metric = 0.0;
  std::optional<std::size_t> best_pos;
  for (std::size_t start = 0; start + plen <= rx.size(); ++start) {
    Cx corr(0.0, 0.0);
    double energy = 0.0;
    for (std::size_t k = 0; k < plen; ++k) {
      corr += rx[start + k] * std::conj(preamble[k]);
      energy += std::norm(rx[start + k]);
    }
    if (energy <= 0.0) continue;
    const double metric =
        std::abs(corr) / std::sqrt(energy * static_cast<double>(plen));
    if (metric > best_metric) {
      best_metric = metric;
      best_pos = start + plen;
    }
  }
  if (best_metric < threshold) return std::nullopt;
  return best_pos;
}

}  // namespace acorn::baseband
