// Time-domain wireless channel: tapped-delay-line multipath (Rayleigh
// block fading with an exponential power-delay profile) plus AWGN whose
// variance follows the thermal-noise model of phy/noise.hpp.
//
// Because noise power is sigma^2 = N0 * Fs per complex sample, doubling
// the sampling bandwidth (20 -> 40 MHz) doubles the in-band noise exactly
// as paper Eq. 1 predicts, with no special-casing anywhere.
#pragma once

#include <span>
#include <vector>

#include "baseband/fft.hpp"
#include "util/rng.hpp"

namespace acorn::baseband {

struct ChannelConfig {
  /// Sampling rate (= channel bandwidth) in Hz.
  double sample_rate_hz = 20.0e6;
  /// Thermal noise PSD in dBm/Hz (paper uses -174) plus receiver NF.
  double noise_psd_dbm_per_hz = -174.0;
  double noise_figure_db = 0.0;
  /// Large-scale path loss applied to the signal (dB).
  double path_loss_db = 0.0;
  /// Number of multipath taps; 1 = frequency-flat.
  int num_taps = 1;
  /// Exponential power-delay-profile decay constant, in samples.
  double delay_spread_samples = 2.0;
  /// When false the taps are deterministic (sqrt of the PDP), giving a
  /// repeatable frequency-selective channel without Rayleigh fading.
  bool rayleigh = true;
};

class FadingChannel {
 public:
  /// Draws the initial fading realization from `rng`.
  FadingChannel(const ChannelConfig& config, util::Rng& rng);

  const ChannelConfig& config() const { return config_; }

  /// Draw a fresh (block) fading realization; taps stay fixed until the
  /// next redraw, i.e. fading is constant within a packet.
  void redraw(util::Rng& rng);

  /// Convolve with the tap line and add AWGN. Output length equals
  /// input length + taps - 1.
  std::vector<Cx> transmit(std::span<const Cx> tx, util::Rng& rng) const;

  /// Convolve only (no noise) — used when several transmit antennas
  /// superpose at one receive antenna and noise must be added once.
  std::vector<Cx> propagate(std::span<const Cx> tx) const;

  /// Allocation-free variants: `out.size()` must equal
  /// tx.size() + taps - 1 and must not alias `tx`. For
  /// frequency_response_into, `out.size()` is the FFT size.
  void transmit_into(std::span<const Cx> tx, std::span<Cx> out,
                     util::Rng& rng) const;
  void propagate_into(std::span<const Cx> tx, std::span<Cx> out) const;
  void frequency_response_into(std::span<Cx> out) const;

  /// Per-sample complex noise variance (mW).
  double noise_variance_mw() const;

  /// Channel frequency response over `fft_size` bins (genie CSI for the
  /// OFDM equalizer).
  std::vector<Cx> frequency_response(std::size_t fft_size) const;

  std::span<const Cx> taps() const { return taps_; }

 private:
  ChannelConfig config_;
  std::vector<Cx> taps_;
};

/// Additive white Gaussian noise with per-sample variance `variance_mw`
/// applied in place.
void add_awgn(std::span<Cx> samples, double variance_mw, util::Rng& rng);

}  // namespace acorn::baseband
