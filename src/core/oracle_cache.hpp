// Incremental, memoizing throughput oracle for the control plane.
//
// Algorithm 2 calls its oracle once per candidate (AP, color) move, and
// the exact oracle (`Wlan::evaluate`) rebuilds the interference graph and
// rescans every client for every cell on every call — even though both
// depend only on the association, which is invariant across an entire
// `allocate()` run. CachedOracle hoists that work out of the hot loop:
//
//  * a sim::NetSnapshot (interference graph, flat per-AP client lists,
//    precomputed SNRs / rx-power matrix / MCS threshold tables) is built
//    ONCE per (wlan, association) and reused across all candidate
//    evaluations;
//  * per-cell results are memoized keyed by everything a cell's goodput
//    can depend on once the association is fixed — the cell's own
//    channel, its medium share, and (when `sinr_interference` is on) the
//    hidden-interferer signature (channel + activity of every co-channel
//    AP outside carrier-sense range). A single-AP channel flip therefore
//    only re-evaluates the flipped cell plus the cells whose contender
//    set or hidden-interference term actually changed; every other cell
//    is a hash lookup.
//
// Results are bit-identical to `Wlan::evaluate(...).total_goodput_bps`:
// cache misses run the exact same per-cell kernel the evaluator uses
// (`NetSnapshot::evaluate_cell`, itself property-tested bit-identical to
// the legacy `Wlan::evaluate_cell_in` reference path) and cache hits
// replay a previously computed double unchanged. The
// memoization is guarded by a mutex, so one CachedOracle may be shared by
// the allocator's optional scan threads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/allocation.hpp"
#include "sim/netkernel.hpp"

namespace acorn::core {

struct OracleCacheStats {
  std::uint64_t calls = 0;        // oracle invocations (full assignments)
  std::uint64_t cell_evals = 0;   // full per-cell computations (misses)
  std::uint64_t cell_hits = 0;    // memoized per-cell replays
  std::uint64_t share_evals = 0;  // unweighted share-vector scans (misses)
  std::uint64_t share_hits = 0;   // memoized share-vector replays
  // Batched-scan path (total_bps_batch).
  std::uint64_t batch_calls = 0;       // total_bps_batch invocations
  std::uint64_t batch_candidates = 0;  // flips scored through batches
  std::uint64_t batch_full_evals = 0;  // full cell-lane evaluations
  std::uint64_t batch_rescales = 0;    // share-only cell rescales
  std::uint64_t batch_reuses = 0;      // untouched cells replayed from base
};

/// One candidate move of Algorithm 2's scan: AP `ap` flipped to
/// `channel` with every other AP kept at the base assignment.
struct FlipCandidate {
  int ap = 0;
  net::Channel channel = net::Channel::basic(0);
};

/// Exact throughput oracle bound to one (wlan, association, traffic).
/// `wlan` must outlive the oracle; the association is copied.
///
/// An optional per-client weight vector turns the objective into a
/// load-weighted goodput sum: each client's goodput is scaled by its
/// offered-load fraction, so Algorithm 2 stops optimizing for clients
/// with nothing to send. Weights are fixed for the oracle's lifetime
/// (they join the association in the "rebuild on change" contract), so
/// the per-cell memo keys need no extra bits. With no weights the
/// result is bit-identical to the unweighted evaluator.
class CachedOracle {
 public:
  CachedOracle(const sim::Wlan& wlan, net::Association assoc,
               mac::TrafficType traffic = mac::TrafficType::kUdp,
               std::vector<double> client_weights = {});

  /// Aggregate network goodput under `assignment`; bit-identical to
  /// wlan.evaluate(assoc, assignment, traffic).total_goodput_bps when
  /// no client weights were supplied, otherwise the weighted sum
  /// described above.
  double total_bps(const net::ChannelAssignment& assignment) const;

  /// Batched scan: out[j] = total_bps(base with candidates[j] applied),
  /// bit-identical to the serial calls, without materializing the
  /// flipped assignments. One shared per-base analysis (activity shares,
  /// integer conflict counts, per-cell values + share-independent
  /// per-client products) classifies every (cell, candidate) pair as
  /// untouched (replay the base cell value), share-only (batched
  /// rescale) or fully touched (batched re-evaluation through
  /// NetSnapshot::evaluate_cells_batch); per-candidate activity vectors
  /// are derived incrementally from the base conflict counts. Safe to
  /// call concurrently from many threads on disjoint candidate spans —
  /// the per-base analysis is built once under the cache mutex and
  /// shared read-only.
  void total_bps_batch(const net::ChannelAssignment& base,
                       std::span<const FlipCandidate> candidates,
                       std::span<double> out,
                       sim::BatchKernel kernel =
                           sim::BatchKernel::kAuto) const;

  const net::Association& association() const { return assoc_; }
  const net::InterferenceGraph& graph() const { return snap_.graph(); }
  const sim::NetSnapshot& snapshot() const { return snap_; }
  OracleCacheStats stats() const;

 private:
  // A cell's memo key: the invalidation signature described above,
  // packed into 64-bit words (channel code, bit pattern of the medium
  // share, then per hidden interferer: id, channel code, activity bits).
  using CellKey = std::vector<std::uint64_t>;
  struct CellKeyHash {
    std::size_t operator()(const CellKey& k) const;
  };

  CellKey cell_key(int ap, const net::ChannelAssignment& assignment,
                   double medium_share,
                   std::span<const double> activity) const;

  // Shared per-base-assignment analysis for the batched scan: everything
  // a single-AP flip perturbs incrementally. Built once per distinct
  // base assignment (one per allocator round) and shared read-only by
  // all scan threads.
  struct BatchBase {
    CellKey key;  // per-AP packed channel codes of the base
    net::ChannelAssignment assignment;
    std::vector<double> activity;    // unweighted shares, all APs
    std::vector<int> conflict_count; // integer contender counts, all APs
    std::vector<int> cells;          // non-empty cells, ascending AP id
    std::vector<double> cell_share;  // medium share per cells[] entry
    std::vector<double> cell_value;  // objective value per cells[] entry
    std::vector<sim::CellScanCache> cell_cache;  // per cells[] entry
    std::vector<CellKey> cell_memo_key;          // per cells[] entry
    double total = 0.0;              // == total_bps(assignment)
  };

  std::shared_ptr<const BatchBase> batch_base_for(
      const net::ChannelAssignment& base, sim::BatchKernel kernel) const;

  const sim::Wlan& wlan_;
  net::Association assoc_;
  mac::TrafficType traffic_;
  std::vector<double> weights_;  // empty = unweighted objective
  sim::NetSnapshot snap_;        // graph + flat link state, built once

  mutable std::mutex mutex_;  // guards memo_, share_memo_ and stats_
  mutable std::vector<std::unordered_map<CellKey, double, CellKeyHash>> memo_;
  // Unweighted activity-share vectors memoized per assignment (keyed by
  // the per-AP channel codes), replacing an O(APs^2) adjacency scan per
  // oracle call with a hash lookup. Values are read through pointers
  // into the map: unordered_map nodes are address-stable under rehash
  // and a stored vector is never mutated after insertion.
  mutable std::unordered_map<CellKey, std::vector<double>, CellKeyHash>
      share_memo_;
  mutable std::shared_ptr<const BatchBase> batch_base_;
  mutable OracleCacheStats stats_;
};

/// Wrap a Wlan in a self-managing cached ThroughputOracle. The returned
/// callable lazily builds a CachedOracle on first use and rebuilds it
/// whenever it is called with a *different* association (Algorithm 2 and
/// the baselines hold the association fixed, so in practice the graph and
/// client lists are built exactly once per allocate() run). `wlan` must
/// outlive the returned oracle.
ThroughputOracle make_cached_oracle(const sim::Wlan& wlan,
                                    mac::TrafficType traffic =
                                        mac::TrafficType::kUdp);

}  // namespace acorn::core
