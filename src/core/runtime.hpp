// The running ACORN system (paper Fig. 7, operationally): clients
// associate through Algorithm 1 as they arrive, cells lose them when
// they depart, and every period T the channel-allocation module re-tunes
// the assignment for the clients currently present. Drives the
// discrete-event engine; the paper's Click utility plays this role on
// the real testbed.
#pragma once

#include <functional>

#include "core/controller.hpp"
#include "sim/events.hpp"

namespace acorn::core {

/// A snapshot the runtime reports after every maintenance pass.
struct MaintenanceReport {
  double time_s = 0.0;
  int active_clients = 0;
  int switches = 0;
  double total_goodput_bps = 0.0;
};

class PeriodicRuntime {
 public:
  /// `initial` seeds the channel assignment (e.g. whatever the APs booted
  /// with); the first maintenance pass runs after one period.
  PeriodicRuntime(const sim::Wlan& wlan, const AcornController& controller,
                  net::ChannelAssignment initial);

  /// Current state.
  const net::Association& association() const { return association_; }
  const net::ChannelAssignment& assignment() const { return assignment_; }
  const std::vector<MaintenanceReport>& reports() const { return reports_; }

  /// Client `u` arrives now: Algorithm 1 picks its AP immediately.
  /// Returns the chosen AP (nullopt if nothing is in range).
  std::optional<int> client_arrived(int u);

  /// Client `u` departs now.
  void client_departed(int u);

  /// Install the periodic maintenance timer on `queue`. Must be called
  /// once; the timer reschedules itself every controller period until
  /// `horizon_s`.
  void start(sim::EventQueue& queue, double horizon_s);

  /// Optional observer invoked after every maintenance pass.
  void set_observer(std::function<void(const MaintenanceReport&)> observer) {
    observer_ = std::move(observer);
  }

 private:
  void maintain(double now);
  void schedule_next(sim::EventQueue& queue, double when, double horizon_s);

  const sim::Wlan& wlan_;
  const AcornController& controller_;
  net::Association association_;
  net::ChannelAssignment assignment_;
  std::vector<MaintenanceReport> reports_;
  std::function<void(const MaintenanceReport&)> observer_;
};

}  // namespace acorn::core
