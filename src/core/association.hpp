// ACORN's user association — Algorithm 1 of the paper.
//
// A joining client u gathers modified beacons from every AP in range
// (trial-associating so K_i, ATD_i and M_i include it), computes the
// per-client throughputs with and without itself,
//   X_w,u^i  = M_i / ATD_i,
//   X_wo,u^i = M_i / (ATD_i - d_u^i),
// and picks the AP maximizing the network-wide utility (Eq. 4):
//   U(u, i) = K_i * X_w,u^i + sum_{j in Au, j != i} (K_j - 1) * X_wo,u^j.
// Poor clients end up grouped with similar-quality clients, which is what
// lets the channel module bond aggressively in the good cells.
#pragma once

#include <optional>
#include <vector>

#include "sim/mgmt.hpp"

namespace acorn::core {

struct AssociationConfig {
  /// Minimum beacon RSS for an AP to be considered in range (~MCS0
  /// decode sensitivity; looser than the carrier-sense threshold).
  double min_rss_dbm = -97.0;
};

/// Utility terms for one candidate AP (exposed for tests and tracing).
struct CandidateUtility {
  int ap_id = 0;
  double x_with = 0.0;     // X_w,u
  double x_without = 0.0;  // X_wo,u
  double utility = 0.0;    // U_asoc(u, i)
};

class UserAssociation {
 public:
  explicit UserAssociation(AssociationConfig config = {});

  const AssociationConfig& config() const { return config_; }

  /// Evaluate Eq. 4 for every AP in range of client `u` given the current
  /// network state. Beacons are the trial-association versions (they
  /// include u), exactly as in the paper's info-gathering step.
  std::vector<CandidateUtility> candidate_utilities(
      const sim::Wlan& wlan, const net::Association& assoc,
      const net::ChannelAssignment& assignment, int u) const;

  /// Algorithm 1: the AP `u` should associate with, or nullopt when no AP
  /// is in range.
  std::optional<int> select_ap(const sim::Wlan& wlan,
                               const net::Association& assoc,
                               const net::ChannelAssignment& assignment,
                               int u) const;

 private:
  AssociationConfig config_;
};

}  // namespace acorn::core
