#include "core/width_switch.hpp"

namespace acorn::core {

WidthDecision decide_width(const sim::Wlan& wlan, int ap,
                           const std::vector<int>& clients,
                           double medium_share) {
  WidthDecision d;
  // isolated_cell_bps evaluates at share 1; throughput scales linearly
  // with the share, so the comparison is share-independent — we scale
  // anyway so callers can log absolute numbers.
  d.cell_bps_20 =
      medium_share *
      wlan.isolated_cell_bps(ap, clients, phy::ChannelWidth::k20MHz);
  d.cell_bps_40 =
      medium_share *
      wlan.isolated_cell_bps(ap, clients, phy::ChannelWidth::k40MHz);
  d.width = d.cell_bps_40 >= d.cell_bps_20 ? phy::ChannelWidth::k40MHz
                                           : phy::ChannelWidth::k20MHz;
  return d;
}

}  // namespace acorn::core
