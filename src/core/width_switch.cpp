#include "core/width_switch.hpp"

#include <algorithm>
#include <stdexcept>

namespace acorn::core {

WidthDecision decide_width(const sim::Wlan& wlan, int ap,
                           const std::vector<int>& clients,
                           double medium_share) {
  WidthDecision d;
  // isolated_cell_bps evaluates at share 1; throughput scales linearly
  // with the share, so the comparison is share-independent — we scale
  // anyway so callers can log absolute numbers.
  d.cell_bps_20 =
      medium_share *
      wlan.isolated_cell_bps(ap, clients, phy::ChannelWidth::k20MHz);
  d.cell_bps_40 =
      medium_share *
      wlan.isolated_cell_bps(ap, clients, phy::ChannelWidth::k40MHz);
  d.width = d.cell_bps_40 >= d.cell_bps_20 ? phy::ChannelWidth::k40MHz
                                           : phy::ChannelWidth::k20MHz;
  d.cell_bps_20_primary = d.cell_bps_20;
  d.cell_bps_20_secondary = d.cell_bps_20;
  return d;
}

WidthDecision decide_width(const sim::Wlan& wlan, int ap,
                           const std::vector<int>& clients,
                           const net::InterferenceGraph& graph,
                           const net::ChannelAssignment& assignment,
                           double medium_share, mac::TrafficType traffic) {
  const net::Channel bond = assignment[static_cast<std::size_t>(ap)];
  if (!bond.is_bonded()) {
    throw std::invalid_argument("decide_width: AP holds no 40 MHz bond");
  }
  WidthDecision d;
  net::ChannelAssignment variant = assignment;
  const auto cell_bps = [&](const net::Channel& ch) {
    variant[static_cast<std::size_t>(ap)] = ch;
    return wlan
        .evaluate_cell_in(ap, clients, medium_share, graph, variant,
                          traffic)
        .goodput_bps;
  };
  d.cell_bps_40 = cell_bps(bond);
  d.cell_bps_20_primary = cell_bps(net::Channel::basic(bond.primary()));
  d.cell_bps_20_secondary =
      cell_bps(net::Channel::basic(bond.primary() + 1));
  // Ties go to the primary half so the decision is stable when the
  // halves are indistinguishable.
  const net::Channel half =
      d.cell_bps_20_secondary > d.cell_bps_20_primary
          ? net::Channel::basic(bond.primary() + 1)
          : net::Channel::basic(bond.primary());
  d.cell_bps_20 =
      std::max(d.cell_bps_20_primary, d.cell_bps_20_secondary);
  if (d.cell_bps_40 >= d.cell_bps_20) {
    d.width = phy::ChannelWidth::k40MHz;
    d.channel = bond;
  } else {
    d.width = phy::ChannelWidth::k20MHz;
    d.channel = half;
  }
  return d;
}

}  // namespace acorn::core
