// Measurement-driven throughput oracle for Algorithm 2 (paper §4.2,
// "Estimating throughput"). In the real system an AP cannot evaluate a
// candidate channel exactly: it has the SNR measured on its *current*
// channel, the paper's ±3 dB width calibration, theoretical BER/PER
// formulas, and the IAPP census of co-channel neighbors. This oracle
// reproduces that information set, so the allocator can be run exactly
// the way the deployed system would run it — and compared against the
// genie oracle (see the estimator ablation bench).
#pragma once

#include "core/allocation.hpp"
#include "phy/estimator.hpp"

namespace acorn::core {

/// Build a ThroughputOracle that estimates the aggregate network
/// throughput the way ACORN's implementation does:
///  * each AP measured its clients' SNR on `measured_on[ap]`'s width;
///  * candidate widths are predicted with the LinkEstimator (3.0 dB
///    calibration + theoretical coded BER + Eq. 6 PER);
///  * contention shares come from the interference graph census.
/// The returned oracle captures `wlan`, `measured_on` and `estimator` by
/// value/reference as appropriate; `wlan` must outlive it.
///
/// Like the exact CachedOracle, the returned callable is incremental: the
/// interference graph and per-AP client lists are built once per
/// association, and per-cell estimates are memoized on (AP, target width,
/// medium share), so repeated candidate scans over the same association
/// only recompute the cells a channel flip actually changed. Values are
/// bit-identical to the uncached formulation. Thread-safe.
ThroughputOracle make_measurement_oracle(
    const sim::Wlan& wlan, net::ChannelAssignment measured_on,
    phy::LinkEstimator estimator = phy::LinkEstimator{});

}  // namespace acorn::core
