#include "core/runtime.hpp"

#include <stdexcept>

namespace acorn::core {

PeriodicRuntime::PeriodicRuntime(const sim::Wlan& wlan,
                                 const AcornController& controller,
                                 net::ChannelAssignment initial)
    : wlan_(wlan),
      controller_(controller),
      association_(static_cast<std::size_t>(wlan.topology().num_clients()),
                   net::kUnassociated),
      assignment_(std::move(initial)) {
  if (static_cast<int>(assignment_.size()) != wlan.topology().num_aps()) {
    throw std::invalid_argument("initial assignment size != AP count");
  }
}

std::optional<int> PeriodicRuntime::client_arrived(int u) {
  if (u < 0 || u >= wlan_.topology().num_clients()) {
    throw std::out_of_range("client id");
  }
  if (association_[static_cast<std::size_t>(u)] != net::kUnassociated) {
    throw std::logic_error("client already associated");
  }
  return controller_.associate_client(wlan_, association_, assignment_, u);
}

void PeriodicRuntime::client_departed(int u) {
  if (u < 0 || u >= wlan_.topology().num_clients()) {
    throw std::out_of_range("client id");
  }
  association_[static_cast<std::size_t>(u)] = net::kUnassociated;
}

void PeriodicRuntime::start(sim::EventQueue& queue, double horizon_s) {
  schedule_next(queue, queue.now() + controller_.config().period_s,
                horizon_s);
}

void PeriodicRuntime::schedule_next(sim::EventQueue& queue, double when,
                                    double horizon_s) {
  if (when > horizon_s) return;
  queue.schedule(when, [this, &queue, horizon_s](double now) {
    maintain(now);
    schedule_next(queue, now + controller_.config().period_s, horizon_s);
  });
}

void PeriodicRuntime::maintain(double now) {
  const AllocationResult realloc =
      controller_.reallocate(wlan_, association_, assignment_);
  assignment_ = realloc.assignment;
  MaintenanceReport report;
  report.time_s = now;
  report.switches = realloc.switches;
  for (int owner : association_) {
    if (owner != net::kUnassociated) ++report.active_clients;
  }
  report.total_goodput_bps =
      wlan_.evaluate(association_, assignment_).total_goodput_bps;
  reports_.push_back(report);
  if (observer_) observer_(report);
}

}  // namespace acorn::core
