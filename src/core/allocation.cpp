#include "core/allocation.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "core/oracle_cache.hpp"
#include "util/worker_pool.hpp"

namespace acorn::core {

ChannelAllocator::ChannelAllocator(net::ChannelPlan plan,
                                   AllocationConfig config)
    : plan_(plan), config_(config) {
  if (config_.epsilon < 1.0) {
    throw std::invalid_argument("epsilon must be >= 1");
  }
  if (config_.max_rounds < 1) {
    throw std::invalid_argument("max_rounds must be >= 1");
  }
  if (config_.batch_size < 1) {
    throw std::invalid_argument("batch_size must be >= 1");
  }
}

net::ChannelAssignment ChannelAllocator::random_assignment(
    int num_aps, util::Rng& rng) const {
  const std::vector<net::Channel> colors = plan_.all_channels();
  net::ChannelAssignment out;
  out.reserve(static_cast<std::size_t>(num_aps));
  for (int i = 0; i < num_aps; ++i) {
    out.push_back(colors[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(colors.size()) - 1))]);
  }
  return out;
}

namespace {

// The shared Algorithm 2 loop. `batch` non-null routes the candidate
// scan through CachedOracle::total_bps_batch; otherwise every candidate
// is one `oracle` call. Both paths score candidates into the same
// trial_y slots and run the same first-strict-improvement winner rule,
// so the committed switch sequence — and with it every downstream
// double — is identical regardless of path, batch size or thread count.
AllocationResult run_algorithm2(const net::ChannelPlan& plan,
                                const AllocationConfig& config,
                                const net::Association& assoc,
                                net::ChannelAssignment initial,
                                const ThroughputOracle& oracle,
                                const CachedOracle* batch) {
  const std::vector<net::Channel> colors = plan.all_channels();
  const int n_aps = static_cast<int>(initial.size());

  AllocationResult result;
  result.assignment = std::move(initial);
  ++result.evaluations;  // k counts the initial y(F_0) measurement too
  double y = oracle(assoc, result.assignment);
  result.trajectory_bps.push_back(y);

  // One persistent pool for the whole run: the scan used to spawn and
  // join a fresh std::vector<std::thread> per inner iteration, which
  // dominates wall-clock once the per-candidate work is batched away.
  util::WorkerPool pool(config.num_threads);

  struct Candidate {
    int ap;
    std::size_t color_idx;
  };
  std::vector<Candidate> candidates;
  std::vector<FlipCandidate> flips;
  std::vector<double> trial_y;

  for (int round = 0; round < config.max_rounds; ++round) {
    const double y_round_start = y;
    // Every AP gets at most one switch per round (the paper's AP / AP'
    // bookkeeping).
    std::vector<char> switched(static_cast<std::size_t>(n_aps), 0);
    int round_switches = 0;
    while (true) {
      candidates.clear();
      for (int i = 0; i < n_aps; ++i) {
        if (switched[static_cast<std::size_t>(i)]) continue;
        const net::Channel current =
            result.assignment[static_cast<std::size_t>(i)];
        for (std::size_t k = 0; k < colors.size(); ++k) {
          if (colors[k] == current) continue;
          candidates.push_back(Candidate{i, k});
        }
      }
      if (candidates.empty()) break;
      result.evaluations += static_cast<std::int64_t>(candidates.size());
      trial_y.assign(candidates.size(), 0.0);
      if (batch != nullptr) {
        // Batched scan: contiguous candidate blocks, each one
        // total_bps_batch call, fanned across the pool.
        flips.resize(candidates.size());
        for (std::size_t j = 0; j < candidates.size(); ++j) {
          flips[j] = FlipCandidate{candidates[j].ap,
                                   colors[candidates[j].color_idx]};
        }
        const std::size_t batch_size =
            static_cast<std::size_t>(config.batch_size);
        const int n_batches = static_cast<int>(
            (candidates.size() + batch_size - 1) / batch_size);
        pool.run(n_batches, [&](int b) {
          const std::size_t begin =
              static_cast<std::size_t>(b) * batch_size;
          const std::size_t count =
              std::min(batch_size, candidates.size() - begin);
          batch->total_bps_batch(
              result.assignment,
              std::span<const FlipCandidate>(flips).subspan(begin, count),
              std::span<double>(trial_y).subspan(begin, count),
              config.batch_kernel);
        });
      } else {
        // One oracle call per candidate, contiguous slices per worker
        // (each slice reuses one flip/evaluate/restore trial vector).
        const std::size_t n_slices = std::min<std::size_t>(
            static_cast<std::size_t>(pool.threads()), candidates.size());
        const std::size_t chunk =
            (candidates.size() + n_slices - 1) / n_slices;
        pool.run(static_cast<int>(n_slices), [&](int t) {
          const std::size_t begin = static_cast<std::size_t>(t) * chunk;
          const std::size_t end =
              std::min(begin + chunk, candidates.size());
          net::ChannelAssignment trial = result.assignment;
          for (std::size_t j = begin; j < end; ++j) {
            const Candidate& cand = candidates[j];
            const std::size_t ap = static_cast<std::size_t>(cand.ap);
            trial[ap] = colors[cand.color_idx];
            trial_y[j] = oracle(assoc, trial);
            trial[ap] = result.assignment[ap];
          }
        });
      }
      // Winner: the first candidate in scan order whose throughput
      // strictly beats everything before it — identical to the serial
      // running-max, regardless of how the scan was partitioned.
      int winner = -1;
      double winner_y = y;
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        if (trial_y[j] > winner_y) {
          winner_y = trial_y[j];
          winner = static_cast<int>(j);
        }
      }
      if (winner < 0) break;  // max rank over remaining APs is <= 0
      const Candidate& best = candidates[static_cast<std::size_t>(winner)];
      result.assignment[static_cast<std::size_t>(best.ap)] =
          colors[best.color_idx];
      switched[static_cast<std::size_t>(best.ap)] = 1;
      ++result.switches;
      ++round_switches;
      y = winner_y;
      result.trajectory_bps.push_back(y);
    }
    // A round that committed nothing found no improving move anywhere:
    // the assignment is a fixed point and further rounds would rescan the
    // identical landscape (this also covers degenerate networks whose
    // goodput is stuck at zero, where the epsilon test below can never
    // fire). Otherwise stop when the round improved aggregate throughput
    // by <= (eps - 1).
    if (round_switches == 0) break;
    if (y < config.epsilon * y_round_start) break;
  }
  result.final_bps = y;
  return result;
}

}  // namespace

AllocationResult ChannelAllocator::allocate(const sim::Wlan& wlan,
                                            const net::Association& assoc,
                                            net::ChannelAssignment initial,
                                            ThroughputOracle oracle) const {
  if (static_cast<int>(initial.size()) != wlan.topology().num_aps()) {
    throw std::invalid_argument("initial assignment size != AP count");
  }
  if (!oracle) {
    if (config_.cache_oracle) {
      // The default path: build the incremental cached oracle for this
      // run and take the CachedOracle overload (which batch-scans when
      // configured).
      const CachedOracle cache(wlan, assoc);
      return allocate(wlan, assoc, std::move(initial), cache);
    }
    oracle = [&wlan](const net::Association& a,
                     const net::ChannelAssignment& f) {
      return wlan.evaluate(a, f).total_goodput_bps;
    };
  }
  return run_algorithm2(plan_, config_, assoc, std::move(initial), oracle,
                        nullptr);
}

AllocationResult ChannelAllocator::allocate(const sim::Wlan& wlan,
                                            const net::Association& assoc,
                                            net::ChannelAssignment initial,
                                            const CachedOracle& oracle) const {
  if (static_cast<int>(initial.size()) != wlan.topology().num_aps()) {
    throw std::invalid_argument("initial assignment size != AP count");
  }
  if (oracle.association() != assoc) {
    throw std::invalid_argument("oracle bound to a different association");
  }
  const ThroughputOracle wrapped = [&oracle](
                                       const net::Association&,
                                       const net::ChannelAssignment& f) {
    return oracle.total_bps(f);
  };
  return run_algorithm2(plan_, config_, assoc, std::move(initial), wrapped,
                        config_.batch_scan ? &oracle : nullptr);
}

double isolated_upper_bound_bps(const sim::Wlan& wlan,
                                const net::Association& assoc,
                                mac::TrafficType traffic) {
  double total = 0.0;
  for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
    total += wlan.isolated_best_bps(ap, wlan.clients_of(assoc, ap), traffic);
  }
  return total;
}

}  // namespace acorn::core
