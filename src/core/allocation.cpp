#include "core/allocation.hpp"

#include <algorithm>
#include <stdexcept>

namespace acorn::core {

ChannelAllocator::ChannelAllocator(net::ChannelPlan plan,
                                   AllocationConfig config)
    : plan_(plan), config_(config) {
  if (config_.epsilon < 1.0) {
    throw std::invalid_argument("epsilon must be >= 1");
  }
  if (config_.max_rounds < 1) {
    throw std::invalid_argument("max_rounds must be >= 1");
  }
}

net::ChannelAssignment ChannelAllocator::random_assignment(
    int num_aps, util::Rng& rng) const {
  const std::vector<net::Channel> colors = plan_.all_channels();
  net::ChannelAssignment out;
  out.reserve(static_cast<std::size_t>(num_aps));
  for (int i = 0; i < num_aps; ++i) {
    out.push_back(colors[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(colors.size()) - 1))]);
  }
  return out;
}

AllocationResult ChannelAllocator::allocate(const sim::Wlan& wlan,
                                            const net::Association& assoc,
                                            net::ChannelAssignment initial,
                                            ThroughputOracle oracle) const {
  if (static_cast<int>(initial.size()) != wlan.topology().num_aps()) {
    throw std::invalid_argument("initial assignment size != AP count");
  }
  if (!oracle) {
    oracle = [&wlan](const net::Association& a,
                     const net::ChannelAssignment& f) {
      return wlan.evaluate(a, f).total_goodput_bps;
    };
  }
  const std::vector<net::Channel> colors = plan_.all_channels();
  const int n_aps = wlan.topology().num_aps();

  AllocationResult result;
  result.assignment = std::move(initial);
  double y = oracle(assoc, result.assignment);
  result.trajectory_bps.push_back(y);

  for (int round = 0; round < config_.max_rounds; ++round) {
    const double y_round_start = y;
    // Every AP gets at most one switch per round (the paper's AP / AP'
    // bookkeeping).
    std::vector<char> switched(static_cast<std::size_t>(n_aps), 0);
    while (true) {
      int winner = -1;
      net::Channel winner_channel = net::Channel::basic(0);
      double winner_y = y;
      for (int i = 0; i < n_aps; ++i) {
        if (switched[static_cast<std::size_t>(i)]) continue;
        const net::Channel current = result.assignment[
            static_cast<std::size_t>(i)];
        for (const net::Channel& c : colors) {
          if (c == current) continue;
          net::ChannelAssignment trial = result.assignment;
          trial[static_cast<std::size_t>(i)] = c;
          ++result.evaluations;
          const double tmp = oracle(assoc, trial);
          if (tmp > winner_y) {
            winner_y = tmp;
            winner = i;
            winner_channel = c;
          }
        }
      }
      if (winner < 0) break;  // max rank over remaining APs is <= 0
      result.assignment[static_cast<std::size_t>(winner)] = winner_channel;
      switched[static_cast<std::size_t>(winner)] = 1;
      ++result.switches;
      y = winner_y;
      result.trajectory_bps.push_back(y);
    }
    // Stop when the round improved aggregate throughput by <= (eps - 1).
    if (y < config_.epsilon * y_round_start) break;
  }
  result.final_bps = y;
  return result;
}

double isolated_upper_bound_bps(const sim::Wlan& wlan,
                                const net::Association& assoc,
                                mac::TrafficType traffic) {
  double total = 0.0;
  for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
    total += wlan.isolated_best_bps(ap, wlan.clients_of(assoc, ap), traffic);
  }
  return total;
}

}  // namespace acorn::core
