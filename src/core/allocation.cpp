#include "core/allocation.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/oracle_cache.hpp"

namespace acorn::core {

ChannelAllocator::ChannelAllocator(net::ChannelPlan plan,
                                   AllocationConfig config)
    : plan_(plan), config_(config) {
  if (config_.epsilon < 1.0) {
    throw std::invalid_argument("epsilon must be >= 1");
  }
  if (config_.max_rounds < 1) {
    throw std::invalid_argument("max_rounds must be >= 1");
  }
}

net::ChannelAssignment ChannelAllocator::random_assignment(
    int num_aps, util::Rng& rng) const {
  const std::vector<net::Channel> colors = plan_.all_channels();
  net::ChannelAssignment out;
  out.reserve(static_cast<std::size_t>(num_aps));
  for (int i = 0; i < num_aps; ++i) {
    out.push_back(colors[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(colors.size()) - 1))]);
  }
  return out;
}

AllocationResult ChannelAllocator::allocate(const sim::Wlan& wlan,
                                            const net::Association& assoc,
                                            net::ChannelAssignment initial,
                                            ThroughputOracle oracle) const {
  if (static_cast<int>(initial.size()) != wlan.topology().num_aps()) {
    throw std::invalid_argument("initial assignment size != AP count");
  }
  // The default oracle: incremental cached evaluation (graph + client
  // lists built once for this run, cells memoized), or a full
  // Wlan::evaluate per candidate when caching is disabled. Both return
  // bit-identical values.
  std::optional<CachedOracle> cache;
  if (!oracle) {
    if (config_.cache_oracle) {
      cache.emplace(wlan, assoc);
      oracle = [&cache](const net::Association&,
                        const net::ChannelAssignment& f) {
        return cache->total_bps(f);
      };
    } else {
      oracle = [&wlan](const net::Association& a,
                       const net::ChannelAssignment& f) {
        return wlan.evaluate(a, f).total_goodput_bps;
      };
    }
  }
  const std::vector<net::Channel> colors = plan_.all_channels();
  const int n_aps = wlan.topology().num_aps();

  AllocationResult result;
  result.assignment = std::move(initial);
  ++result.evaluations;  // k counts the initial y(F_0) measurement too
  double y = oracle(assoc, result.assignment);
  result.trajectory_bps.push_back(y);

  struct Candidate {
    int ap;
    std::size_t color_idx;
  };
  std::vector<Candidate> candidates;
  std::vector<double> trial_y;

  for (int round = 0; round < config_.max_rounds; ++round) {
    const double y_round_start = y;
    // Every AP gets at most one switch per round (the paper's AP / AP'
    // bookkeeping).
    std::vector<char> switched(static_cast<std::size_t>(n_aps), 0);
    int round_switches = 0;
    while (true) {
      candidates.clear();
      for (int i = 0; i < n_aps; ++i) {
        if (switched[static_cast<std::size_t>(i)]) continue;
        const net::Channel current =
            result.assignment[static_cast<std::size_t>(i)];
        for (std::size_t k = 0; k < colors.size(); ++k) {
          if (colors[k] == current) continue;
          candidates.push_back(Candidate{i, k});
        }
      }
      if (candidates.empty()) break;
      result.evaluations += static_cast<int>(candidates.size());
      trial_y.assign(candidates.size(), 0.0);
      // Evaluate a contiguous slice of candidates, reusing one trial
      // vector (flip, evaluate, restore).
      const auto scan = [&](std::size_t begin, std::size_t end) {
        net::ChannelAssignment trial = result.assignment;
        for (std::size_t j = begin; j < end; ++j) {
          const Candidate& cand = candidates[j];
          const std::size_t ap = static_cast<std::size_t>(cand.ap);
          trial[ap] = colors[cand.color_idx];
          trial_y[j] = oracle(assoc, trial);
          trial[ap] = result.assignment[ap];
        }
      };
      const std::size_t n_threads = std::min<std::size_t>(
          config_.num_threads > 1 ? static_cast<std::size_t>(
                                        config_.num_threads)
                                  : 1,
          candidates.size());
      if (n_threads <= 1) {
        scan(0, candidates.size());
      } else {
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        const std::size_t chunk =
            (candidates.size() + n_threads - 1) / n_threads;
        for (std::size_t t = 0; t < n_threads; ++t) {
          const std::size_t begin = t * chunk;
          const std::size_t end =
              std::min(begin + chunk, candidates.size());
          if (begin >= end) break;
          pool.emplace_back(scan, begin, end);
        }
        for (std::thread& th : pool) th.join();
      }
      // Winner: the first candidate in scan order whose throughput
      // strictly beats everything before it — identical to the serial
      // running-max, regardless of how the scan was partitioned.
      int winner = -1;
      double winner_y = y;
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        if (trial_y[j] > winner_y) {
          winner_y = trial_y[j];
          winner = static_cast<int>(j);
        }
      }
      if (winner < 0) break;  // max rank over remaining APs is <= 0
      const Candidate& best = candidates[static_cast<std::size_t>(winner)];
      result.assignment[static_cast<std::size_t>(best.ap)] =
          colors[best.color_idx];
      switched[static_cast<std::size_t>(best.ap)] = 1;
      ++result.switches;
      ++round_switches;
      y = winner_y;
      result.trajectory_bps.push_back(y);
    }
    // A round that committed nothing found no improving move anywhere:
    // the assignment is a fixed point and further rounds would rescan the
    // identical landscape (this also covers degenerate networks whose
    // goodput is stuck at zero, where the epsilon test below can never
    // fire). Otherwise stop when the round improved aggregate throughput
    // by <= (eps - 1).
    if (round_switches == 0) break;
    if (y < config_.epsilon * y_round_start) break;
  }
  result.final_bps = y;
  return result;
}

double isolated_upper_bound_bps(const sim::Wlan& wlan,
                                const net::Association& assoc,
                                mac::TrafficType traffic) {
  double total = 0.0;
  for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
    total += wlan.isolated_best_bps(ap, wlan.clients_of(assoc, ap), traffic);
  }
  return total;
}

}  // namespace acorn::core
