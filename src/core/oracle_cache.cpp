#include "core/oracle_cache.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

namespace acorn::core {

namespace {

// A Channel packed into one word: width tag in the high half, primary
// (lowest occupied basic index) in the low half.
std::uint64_t channel_code(const net::Channel& c) {
  return (static_cast<std::uint64_t>(c.width()) << 32) |
         static_cast<std::uint32_t>(c.primary());
}

std::uint64_t double_bits(double x) { return std::bit_cast<std::uint64_t>(x); }

}  // namespace

std::size_t CachedOracle::CellKeyHash::operator()(const CellKey& k) const {
  // FNV-1a over the key words.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : k) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

CachedOracle::CachedOracle(const sim::Wlan& wlan, net::Association assoc,
                           mac::TrafficType traffic)
    : wlan_(wlan),
      assoc_(std::move(assoc)),
      traffic_(traffic),
      graph_(wlan.topology(), wlan.budget(), assoc_,
             wlan.config().interference),
      clients_(wlan.clients_by_ap(assoc_)),
      memo_(static_cast<std::size_t>(wlan.topology().num_aps())) {}

CachedOracle::CellKey CachedOracle::cell_key(
    int ap, const net::ChannelAssignment& assignment,
    double medium_share) const {
  const net::Channel& own = assignment[static_cast<std::size_t>(ap)];
  CellKey key;
  key.reserve(2);
  key.push_back(channel_code(own));
  key.push_back(double_bits(medium_share));
  if (wlan_.config().sinr_interference) {
    // Hidden-interference signature: channel + activity of every
    // co-channel AP the serving AP does not contend with (mirrors
    // Wlan::hidden_interference_mw's contribution terms; APs with zero
    // spectral overlap contribute exactly nothing and are omitted).
    for (int other = 0; other < graph_.num_aps(); ++other) {
      if (other == ap || graph_.adjacent(ap, other)) continue;
      const net::Channel& other_ch =
          assignment[static_cast<std::size_t>(other)];
      if (other_ch.overlap_fraction(own) <= 0.0) continue;
      key.push_back(static_cast<std::uint64_t>(other));
      key.push_back(channel_code(other_ch));
      key.push_back(
          double_bits(net::medium_access_share(graph_, assignment, other)));
    }
  }
  return key;
}

double CachedOracle::total_bps(const net::ChannelAssignment& assignment) const {
  if (static_cast<int>(assignment.size()) != graph_.num_aps()) {
    throw std::invalid_argument("assignment size != AP count");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.calls;
  }
  const bool weighted = wlan_.config().weighted_contention;
  double total = 0.0;
  for (int ap = 0; ap < graph_.num_aps(); ++ap) {
    const std::vector<int>& clients = clients_[static_cast<std::size_t>(ap)];
    if (clients.empty()) continue;  // goodput is exactly 0
    const double share =
        weighted ? net::medium_access_share_weighted(graph_, assignment, ap)
                 : net::medium_access_share(graph_, assignment, ap);
    CellKey key = cell_key(ap, assignment, share);
    auto& memo = memo_[static_cast<std::size_t>(ap)];
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = memo.find(key);
      if (it != memo.end()) {
        ++stats_.cell_hits;
        total += it->second;
        continue;
      }
    }
    const double goodput =
        wlan_.evaluate_cell_in(ap, clients, share, graph_, assignment,
                               traffic_)
            .goodput_bps;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cell_evals;
      memo.emplace(std::move(key), goodput);
    }
    total += goodput;
  }
  return total;
}

OracleCacheStats CachedOracle::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ThroughputOracle make_cached_oracle(const sim::Wlan& wlan,
                                    mac::TrafficType traffic) {
  struct State {
    std::mutex mutex;
    std::shared_ptr<CachedOracle> cache;
  };
  auto state = std::make_shared<State>();
  return [&wlan, traffic, state](const net::Association& assoc,
                                 const net::ChannelAssignment& trial) {
    std::shared_ptr<CachedOracle> cache;
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (!state->cache || state->cache->association() != assoc) {
        state->cache = std::make_shared<CachedOracle>(wlan, assoc, traffic);
      }
      cache = state->cache;
    }
    return cache->total_bps(trial);
  };
}

}  // namespace acorn::core
