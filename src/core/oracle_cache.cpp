#include "core/oracle_cache.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

namespace acorn::core {

namespace {

// A Channel packed into one word: width tag in the high half, primary
// (lowest occupied basic index) in the low half.
std::uint64_t channel_code(const net::Channel& c) {
  return (static_cast<std::uint64_t>(c.width()) << 32) |
         static_cast<std::uint32_t>(c.primary());
}

std::uint64_t double_bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// Allocation-free twins of Channel::conflicts / overlap_fraction (the
// originals materialize occupied() vectors): a channel occupies the
// basic-index interval [primary, primary + width-slots), so both reduce
// to integer interval intersection. Values are identical — the same
// small-integer ratios.
int occupied_count(const net::Channel& c) { return c.is_bonded() ? 2 : 1; }

int shared_basics(const net::Channel& a, const net::Channel& b) {
  const int a0 = a.primary();
  const int a1 = a0 + occupied_count(a) - 1;
  const int b0 = b.primary();
  const int b1 = b0 + occupied_count(b) - 1;
  const int lo = a0 > b0 ? a0 : b0;
  const int hi = a1 < b1 ? a1 : b1;
  return hi >= lo ? hi - lo + 1 : 0;
}

bool conflicts_fast(const net::Channel& a, const net::Channel& b) {
  return shared_basics(a, b) > 0;
}

double overlap_fraction_fast(const net::Channel& a, const net::Channel& b) {
  return static_cast<double>(shared_basics(a, b)) /
         static_cast<double>(occupied_count(a));
}

}  // namespace

std::size_t CachedOracle::CellKeyHash::operator()(const CellKey& k) const {
  // FNV-1a over the key words.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : k) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

CachedOracle::CachedOracle(const sim::Wlan& wlan, net::Association assoc,
                           mac::TrafficType traffic,
                           std::vector<double> client_weights)
    : wlan_(wlan),
      assoc_(std::move(assoc)),
      traffic_(traffic),
      weights_(std::move(client_weights)),
      snap_(wlan, assoc_),
      memo_(static_cast<std::size_t>(wlan.topology().num_aps())) {
  if (!weights_.empty() &&
      static_cast<int>(weights_.size()) != wlan.topology().num_clients()) {
    throw std::invalid_argument("client weight vector size != client count");
  }
}

CachedOracle::CellKey CachedOracle::cell_key(
    int ap, const net::ChannelAssignment& assignment, double medium_share,
    std::span<const double> activity) const {
  const net::Channel& own = assignment[static_cast<std::size_t>(ap)];
  CellKey key;
  key.reserve(2);
  key.push_back(channel_code(own));
  key.push_back(double_bits(medium_share));
  if (wlan_.config().sinr_interference) {
    // Hidden-interference signature: channel + activity of every
    // co-channel AP the serving AP does not contend with (mirrors
    // NetSnapshot::hidden_mw's contribution terms; APs with zero
    // spectral overlap contribute exactly nothing and are omitted).
    const net::InterferenceGraph& graph = snap_.graph();
    for (int other = 0; other < graph.num_aps(); ++other) {
      if (other == ap || graph.adjacent(ap, other)) continue;
      const net::Channel& other_ch =
          assignment[static_cast<std::size_t>(other)];
      if (other_ch.overlap_fraction(own) <= 0.0) continue;
      key.push_back(static_cast<std::uint64_t>(other));
      key.push_back(channel_code(other_ch));
      key.push_back(double_bits(activity[static_cast<std::size_t>(other)]));
    }
  }
  return key;
}

double CachedOracle::total_bps(const net::ChannelAssignment& assignment) const {
  const int n_aps = snap_.num_aps();
  if (static_cast<int>(assignment.size()) != n_aps) {
    throw std::invalid_argument("assignment size != AP count");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.calls;
  }
  // Unweighted activity shares of every AP under this assignment: the
  // unweighted medium shares and (when sinr is on) both the hidden
  // interferers' activity factors and their cache-key signature bits.
  // They depend only on the per-AP channels, so the whole vector is
  // memoized keyed by the packed channel codes.
  CellKey share_key(static_cast<std::size_t>(n_aps));
  for (int ap = 0; ap < n_aps; ++ap) {
    share_key[static_cast<std::size_t>(ap)] =
        channel_code(assignment[static_cast<std::size_t>(ap)]);
  }
  const std::vector<double>* activity_ptr = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = share_memo_.find(share_key);
    if (it != share_memo_.end()) {
      ++stats_.share_hits;
      activity_ptr = &it->second;
    }
  }
  if (activity_ptr == nullptr) {
    std::vector<double> computed;
    snap_.unweighted_shares(assignment, computed);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.share_evals;
    activity_ptr =
        &share_memo_.emplace(std::move(share_key), std::move(computed))
             .first->second;
  }
  const std::vector<double>& activity = *activity_ptr;
  const bool weighted = wlan_.config().weighted_contention;
  double total = 0.0;
  for (int ap = 0; ap < n_aps; ++ap) {
    if (snap_.cell_clients(ap).empty()) continue;  // goodput is exactly 0
    const double share = weighted ? snap_.weighted_share(assignment, ap)
                                  : activity[static_cast<std::size_t>(ap)];
    CellKey key = cell_key(ap, assignment, share, activity);
    auto& memo = memo_[static_cast<std::size_t>(ap)];
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = memo.find(key);
      if (it != memo.end()) {
        ++stats_.cell_hits;
        total += it->second;
        continue;
      }
    }
    const sim::ApStats cell =
        snap_.evaluate_cell(ap, share, assignment, activity, traffic_);
    double goodput;
    if (weights_.empty()) {
      goodput = cell.goodput_bps;
    } else {
      // Load-weighted cell objective: the cell's own goodput is already
      // the sum of its clients' goodputs, so the weighted variant just
      // scales each term before summing.
      goodput = 0.0;
      for (std::size_t i = 0; i < cell.client_ids.size(); ++i) {
        goodput += weights_[static_cast<std::size_t>(cell.client_ids[i])] *
                   cell.client_goodput_bps[i];
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cell_evals;
      memo.emplace(std::move(key), goodput);
    }
    total += goodput;
  }
  return total;
}

std::shared_ptr<const CachedOracle::BatchBase> CachedOracle::batch_base_for(
    const net::ChannelAssignment& base, sim::BatchKernel kernel) const {
  const int n_aps = snap_.num_aps();
  CellKey key(static_cast<std::size_t>(n_aps));
  for (int ap = 0; ap < n_aps; ++ap) {
    key[static_cast<std::size_t>(ap)] =
        channel_code(base[static_cast<std::size_t>(ap)]);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (batch_base_ && batch_base_->key == key) return batch_base_;
  // Build under the lock: one base change per allocator round, and a
  // duplicate concurrent build would waste far more than the wait.
  // The previous base (one committed flip away) seeds the new one:
  // cells whose memo key is unchanged copy value + scan cache outright,
  // and share-only changes rescale the value and keep the cache (the
  // per-client products in a CellScanCache do not depend on the share).
  const std::shared_ptr<const BatchBase> prev = batch_base_;
  auto bb = std::make_shared<BatchBase>();
  bb->key = std::move(key);
  bb->assignment = base;
  const net::InterferenceGraph& graph = snap_.graph();
  bb->conflict_count.resize(static_cast<std::size_t>(n_aps));
  bb->activity.resize(static_cast<std::size_t>(n_aps));
  for (int ap = 0; ap < n_aps; ++ap) {
    const net::Channel& own = base[static_cast<std::size_t>(ap)];
    int count = 0;
    for (int b = 0; b < n_aps; ++b) {
      if (b != ap && graph.adjacent(ap, b) &&
          conflicts_fast(own, base[static_cast<std::size_t>(b)])) {
        ++count;
      }
    }
    bb->conflict_count[static_cast<std::size_t>(ap)] = count;
    // The exact expression unweighted_shares evaluates.
    bb->activity[static_cast<std::size_t>(ap)] =
        1.0 / (static_cast<double>(count) + 1.0);
  }
  // Two memo keys describe the same cell context up to the medium share
  // iff every word but the share one (index 1) matches.
  const auto same_but_share = [](const CellKey& a, const CellKey& b) {
    if (a.size() != b.size() || a[0] != b[0]) return false;
    for (std::size_t w = 2; w < a.size(); ++w) {
      if (a[w] != b[w]) return false;
    }
    return true;
  };
  const bool weighted = wlan_.config().weighted_contention;
  for (int ap = 0; ap < n_aps; ++ap) {
    if (snap_.cell_clients(ap).empty()) continue;  // goodput is exactly 0
    const double share =
        weighted ? snap_.weighted_share(base, ap)
                 : bb->activity[static_cast<std::size_t>(ap)];
    CellKey ck = cell_key(ap, base, share, bb->activity);
    const std::size_t idx = bb->cells.size();  // prev->cells has same order
    double value = 0.0;
    sim::CellScanCache cache;
    if (prev && prev->cell_memo_key[idx] == ck) {
      value = prev->cell_value[idx];
      cache = prev->cell_cache[idx];
    } else if (prev && same_but_share(prev->cell_memo_key[idx], ck)) {
      snap_.rescale_cell_shares(ap, std::span<const double>(&share, 1),
                                prev->cell_cache[idx], traffic_, weights_,
                                std::span<double>(&value, 1), kernel);
      cache = prev->cell_cache[idx];
      memo_[static_cast<std::size_t>(ap)].emplace(ck, value);
    } else {
      const sim::CellLane lane{share, bb->activity.data(), -1,
                               net::Channel::basic(0)};
      snap_.evaluate_cells_batch(ap, base,
                                 std::span<const sim::CellLane>(&lane, 1),
                                 traffic_, weights_,
                                 std::span<double>(&value, 1), &cache,
                                 kernel);
      // Seed the persistent cell memo (already under mutex_): candidate
      // lanes and later serial calls whose cell context matches the base
      // replay this value instead of re-running the kernel.
      memo_[static_cast<std::size_t>(ap)].emplace(ck, value);
    }
    bb->cells.push_back(ap);
    bb->cell_share.push_back(share);
    bb->cell_value.push_back(value);
    bb->cell_cache.push_back(std::move(cache));
    bb->cell_memo_key.push_back(std::move(ck));
    bb->total += value;
  }
  batch_base_ = bb;
  return bb;
}

void CachedOracle::total_bps_batch(const net::ChannelAssignment& base,
                                   std::span<const FlipCandidate> candidates,
                                   std::span<double> out,
                                   sim::BatchKernel kernel) const {
  const int n_aps = snap_.num_aps();
  if (static_cast<int>(base.size()) != n_aps) {
    throw std::invalid_argument("assignment size != AP count");
  }
  if (out.size() != candidates.size()) {
    throw std::invalid_argument("out size != candidate count");
  }
  if (candidates.empty()) return;
  for (const FlipCandidate& cand : candidates) {
    if (cand.ap < 0 || cand.ap >= n_aps) {
      throw std::invalid_argument("candidate AP out of range");
    }
  }
  const std::shared_ptr<const BatchBase> bb = batch_base_for(base, kernel);
  const net::InterferenceGraph& graph = snap_.graph();
  const bool sinr = wlan_.config().sinr_interference;
  const bool weighted = wlan_.config().weighted_contention;
  const std::size_t n = static_cast<std::size_t>(n_aps);
  const std::size_t n_cands = candidates.size();
  const std::size_t n_cells = bb->cells.size();

  // Weighted share of cell `x` with AP `a` flipped to ch_new — the exact
  // ordered sum NetSnapshot::weighted_share runs on the flipped
  // assignment (overlap terms must NOT be delta-patched: only the full
  // ascending-b accumulation reproduces its rounding).
  const auto weighted_share_flip = [&](int x, int a,
                                       const net::Channel& ch_new) {
    const net::Channel& own =
        x == a ? ch_new : bb->assignment[static_cast<std::size_t>(x)];
    double load = 1.0;
    for (int b = 0; b < n_aps; ++b) {
      if (b == x || !graph.adjacent(x, b)) continue;
      const net::Channel& ch_b =
          b == a ? ch_new : bb->assignment[static_cast<std::size_t>(b)];
      load += overlap_fraction_fast(own, ch_b);
    }
    return 1.0 / load;
  };

  // Per-candidate incremental state + per-cell lane lists.
  std::vector<double> act(n_cands * n);  // per-candidate activity vectors
  std::vector<char> trivial(n_cands, 0);
  struct Touch {
    int cell_idx;
    int kind;  // 0 = full lane, 1 = share-only rescale, 2 = memoized
    int slot;
  };
  std::vector<std::vector<Touch>> touches(n_cands);
  std::vector<std::vector<sim::CellLane>> full_lanes(n_cells);
  std::vector<std::vector<CellKey>> full_keys(n_cells);
  std::vector<std::vector<double>> memo_vals(n_cells);
  std::vector<std::vector<double>> rescale_shares(n_cells);
  std::vector<int> ylist;  // activity-changed APs (≠ a) of one candidate
  std::uint64_t n_reuse = 0;

  // The serial path's cell-memo key for cell `x` under the flip
  // (a -> ch_new), built without materializing the flipped assignment —
  // word for word what cell_key computes, so batch and serial calls
  // share one memo.
  const auto flip_key = [&](int x, int a, const net::Channel& ch_new,
                            double share, const double* act_j) {
    const net::Channel& own =
        x == a ? ch_new : bb->assignment[static_cast<std::size_t>(x)];
    CellKey key;
    key.reserve(2);
    key.push_back(channel_code(own));
    key.push_back(double_bits(share));
    if (sinr) {
      for (int other = 0; other < n_aps; ++other) {
        if (other == x || graph.adjacent(x, other)) continue;
        const net::Channel& other_ch =
            other == a ? ch_new
                       : bb->assignment[static_cast<std::size_t>(other)];
        if (overlap_fraction_fast(other_ch, own) <= 0.0) continue;
        key.push_back(static_cast<std::uint64_t>(other));
        key.push_back(channel_code(other_ch));
        key.push_back(double_bits(act_j[static_cast<std::size_t>(other)]));
      }
    }
    return key;
  };

  // Route one needed full evaluation: persistent memo hit first (values
  // computed by any earlier round, batch or serial call — bit-identical
  // by the kernel equivalence contract), then an in-batch lane with the
  // same key, else a fresh lane.
  const auto full_lane_slot = [&](std::size_t idx, int x, int a,
                                  const net::Channel& ch_new, double share,
                                  double* act_j) -> Touch {
    CellKey key = flip_key(x, a, ch_new, share, act_j);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto& memo = memo_[static_cast<std::size_t>(x)];
      const auto it = memo.find(key);
      if (it != memo.end()) {
        ++stats_.cell_hits;
        memo_vals[idx].push_back(it->second);
        return Touch{static_cast<int>(idx), 2,
                     static_cast<int>(memo_vals[idx].size()) - 1};
      }
    }
    for (std::size_t k = 0; k < full_keys[idx].size(); ++k) {
      if (full_keys[idx][k] == key) {
        return Touch{static_cast<int>(idx), 0, static_cast<int>(k)};
      }
    }
    full_keys[idx].push_back(std::move(key));
    full_lanes[idx].push_back(sim::CellLane{share, act_j, a, ch_new});
    return Touch{static_cast<int>(idx), 0,
                 static_cast<int>(full_lanes[idx].size()) - 1};
  };

  for (std::size_t j = 0; j < n_cands; ++j) {
    const int a = candidates[j].ap;
    const net::Channel ch_new = candidates[j].channel;
    const net::Channel ch_old =
        bb->assignment[static_cast<std::size_t>(a)];
    if (ch_new == ch_old) {
      trivial[j] = 1;
      out[j] = bb->total;
      continue;
    }
    // Incremental activity shares: integer contender-count deltas (only
    // `a` and its graph neighbors can change), then the exact
    // 1/(count+1) expression — bit-identical to a full recount.
    double* act_j = act.data() + j * n;
    for (int x = 0; x < n_aps; ++x) {
      int count;
      if (x == a) {
        count = 0;
        for (int b = 0; b < n_aps; ++b) {
          if (b != a && graph.adjacent(a, b) &&
              conflicts_fast(ch_new,
                             bb->assignment[static_cast<std::size_t>(b)])) {
            ++count;
          }
        }
      } else {
        count = bb->conflict_count[static_cast<std::size_t>(x)];
        if (graph.adjacent(x, a)) {
          const net::Channel& ch_x =
              bb->assignment[static_cast<std::size_t>(x)];
          count += static_cast<int>(conflicts_fast(ch_x, ch_new)) -
                   static_cast<int>(conflicts_fast(ch_x, ch_old));
        }
      }
      act_j[static_cast<std::size_t>(x)] =
          1.0 / (static_cast<double>(count) + 1.0);
    }
    if (sinr) {
      ylist.clear();
      for (int b = 0; b < n_aps; ++b) {
        if (b != a &&
            double_bits(act_j[static_cast<std::size_t>(b)]) !=
                double_bits(bb->activity[static_cast<std::size_t>(b)])) {
          ylist.push_back(b);
        }
      }
    }
    // Classify every non-empty cell: untouched / share-only / full.
    for (std::size_t idx = 0; idx < n_cells; ++idx) {
      const int x = bb->cells[idx];
      if (x == a) {
        const double share_new =
            weighted ? weighted_share_flip(x, a, ch_new)
                     : act_j[static_cast<std::size_t>(a)];
        // Without SINR coupling the flipped cell's value depends on its
        // channel only through the width (rate table + SNR column), so
        // a same-width same-share flip replays the base value, and
        // same-width same-share lanes within the batch share one eval.
        if (!sinr && ch_new.width() == ch_old.width() &&
            double_bits(share_new) == double_bits(bb->cell_share[idx])) {
          ++n_reuse;
          continue;
        }
        int slot = -1;
        if (!sinr) {
          // In non-SINR mode every full lane on this cell is a flip of
          // this cell's own AP, so (width, share) pins the value even
          // across different primaries (the memo key cannot see that).
          for (std::size_t k = 0; k < full_lanes[idx].size(); ++k) {
            const sim::CellLane& lane = full_lanes[idx][k];
            if (lane.flip_channel.width() == ch_new.width() &&
                double_bits(lane.medium_share) == double_bits(share_new)) {
              slot = static_cast<int>(k);
              break;
            }
          }
        }
        touches[j].push_back(
            slot >= 0 ? Touch{static_cast<int>(idx), 0, slot}
                      : full_lane_slot(idx, x, a, ch_new, share_new, act_j));
        continue;
      }
      double share_new;
      if (weighted) {
        share_new = graph.adjacent(x, a) ? weighted_share_flip(x, a, ch_new)
                                         : bb->cell_share[idx];
      } else {
        share_new = act_j[static_cast<std::size_t>(x)];
      }
      const bool share_changed =
          double_bits(share_new) != double_bits(bb->cell_share[idx]);
      bool hidden_touched = false;
      if (sinr) {
        // Cell x's hidden-interference signature moves iff some changed
        // AP (the flipped one, or an activity-changed neighbor of it)
        // is a hidden interferer of x before or after the flip.
        const net::Channel& own =
            bb->assignment[static_cast<std::size_t>(x)];
        if (!graph.adjacent(x, a)) {
          const double cap_old = overlap_fraction_fast(ch_old, own);
          const double cap_new = overlap_fraction_fast(ch_new, own);
          if (cap_old > 0.0 || cap_new > 0.0) {
            // a's interference term into x is captured * act_a * rx /
            // subcarriers(width_a). When the flip leaves every factor
            // bit-identical — same captured fraction, same width (the
            // subcarrier divisor), same activity bits — the term and
            // hence the ordered hidden-power sum are unchanged, e.g. a
            // hopping between the two 20 MHz halves of x's 40 MHz
            // channel without changing its contender count.
            hidden_touched =
                double_bits(cap_old) != double_bits(cap_new) ||
                ch_old.width() != ch_new.width() ||
                double_bits(act_j[static_cast<std::size_t>(a)]) !=
                    double_bits(bb->activity[static_cast<std::size_t>(a)]);
          }
        }
        if (!hidden_touched) {
          for (const int b : ylist) {
            if (b == x || graph.adjacent(x, b)) continue;
            if (overlap_fraction_fast(
                    bb->assignment[static_cast<std::size_t>(b)], own) >
                0.0) {
              hidden_touched = true;
              break;
            }
          }
        }
      }
      if (hidden_touched) {
        touches[j].push_back(
            full_lane_slot(idx, x, a, ch_new, share_new, act_j));
      } else if (share_changed) {
        const int slot = static_cast<int>(rescale_shares[idx].size());
        rescale_shares[idx].push_back(share_new);
        touches[j].push_back(Touch{static_cast<int>(idx), 1, slot});
      } else {
        ++n_reuse;
      }
    }
  }

  // Batched kernel passes, one call per touched cell.
  std::vector<std::vector<double>> full_vals(n_cells);
  std::vector<std::vector<double>> rescale_vals(n_cells);
  std::uint64_t n_full = 0;
  std::uint64_t n_rescale = 0;
  for (std::size_t idx = 0; idx < n_cells; ++idx) {
    const int x = bb->cells[idx];
    if (!full_lanes[idx].empty()) {
      n_full += full_lanes[idx].size();
      full_vals[idx].resize(full_lanes[idx].size());
      snap_.evaluate_cells_batch(x, bb->assignment, full_lanes[idx],
                                 traffic_, weights_, full_vals[idx], nullptr,
                                 kernel);
      // Publish into the persistent memo so later rounds (and serial
      // calls) replay these values for free.
      std::lock_guard<std::mutex> lock(mutex_);
      auto& memo = memo_[static_cast<std::size_t>(x)];
      for (std::size_t k = 0; k < full_keys[idx].size(); ++k) {
        memo.emplace(std::move(full_keys[idx][k]), full_vals[idx][k]);
      }
    }
    if (!rescale_shares[idx].empty()) {
      n_rescale += rescale_shares[idx].size();
      rescale_vals[idx].resize(rescale_shares[idx].size());
      snap_.rescale_cell_shares(x, rescale_shares[idx], bb->cell_cache[idx],
                                traffic_, weights_, rescale_vals[idx],
                                kernel);
    }
  }

  // Assemble each candidate's total in ascending-cell order — the exact
  // summation order total_bps uses.
  for (std::size_t j = 0; j < n_cands; ++j) {
    if (trivial[j]) continue;
    const std::vector<Touch>& tl = touches[j];  // ascending cell_idx
    std::size_t ti = 0;
    double total = 0.0;
    for (std::size_t idx = 0; idx < n_cells; ++idx) {
      double v;
      if (ti < tl.size() && tl[ti].cell_idx == static_cast<int>(idx)) {
        const Touch& t = tl[ti++];
        const auto slot = static_cast<std::size_t>(t.slot);
        v = t.kind == 0   ? full_vals[idx][slot]
            : t.kind == 1 ? rescale_vals[idx][slot]
                          : memo_vals[idx][slot];
      } else {
        v = bb->cell_value[idx];
      }
      total += v;
    }
    out[j] = total;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.batch_calls;
  stats_.batch_candidates += n_cands;
  stats_.batch_full_evals += n_full;
  stats_.batch_rescales += n_rescale;
  stats_.batch_reuses += n_reuse;
}

OracleCacheStats CachedOracle::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ThroughputOracle make_cached_oracle(const sim::Wlan& wlan,
                                    mac::TrafficType traffic) {
  struct State {
    std::mutex mutex;
    std::shared_ptr<CachedOracle> cache;
  };
  auto state = std::make_shared<State>();
  return [&wlan, traffic, state](const net::Association& assoc,
                                 const net::ChannelAssignment& trial) {
    std::shared_ptr<CachedOracle> cache;
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (!state->cache || state->cache->association() != assoc) {
        state->cache = std::make_shared<CachedOracle>(wlan, assoc, traffic);
      }
      cache = state->cache;
    }
    return cache->total_bps(trial);
  };
}

}  // namespace acorn::core
