#include "core/oracle_cache.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

namespace acorn::core {

namespace {

// A Channel packed into one word: width tag in the high half, primary
// (lowest occupied basic index) in the low half.
std::uint64_t channel_code(const net::Channel& c) {
  return (static_cast<std::uint64_t>(c.width()) << 32) |
         static_cast<std::uint32_t>(c.primary());
}

std::uint64_t double_bits(double x) { return std::bit_cast<std::uint64_t>(x); }

}  // namespace

std::size_t CachedOracle::CellKeyHash::operator()(const CellKey& k) const {
  // FNV-1a over the key words.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : k) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

CachedOracle::CachedOracle(const sim::Wlan& wlan, net::Association assoc,
                           mac::TrafficType traffic,
                           std::vector<double> client_weights)
    : wlan_(wlan),
      assoc_(std::move(assoc)),
      traffic_(traffic),
      weights_(std::move(client_weights)),
      snap_(wlan, assoc_),
      memo_(static_cast<std::size_t>(wlan.topology().num_aps())) {
  if (!weights_.empty() &&
      static_cast<int>(weights_.size()) != wlan.topology().num_clients()) {
    throw std::invalid_argument("client weight vector size != client count");
  }
}

CachedOracle::CellKey CachedOracle::cell_key(
    int ap, const net::ChannelAssignment& assignment, double medium_share,
    std::span<const double> activity) const {
  const net::Channel& own = assignment[static_cast<std::size_t>(ap)];
  CellKey key;
  key.reserve(2);
  key.push_back(channel_code(own));
  key.push_back(double_bits(medium_share));
  if (wlan_.config().sinr_interference) {
    // Hidden-interference signature: channel + activity of every
    // co-channel AP the serving AP does not contend with (mirrors
    // NetSnapshot::hidden_mw's contribution terms; APs with zero
    // spectral overlap contribute exactly nothing and are omitted).
    const net::InterferenceGraph& graph = snap_.graph();
    for (int other = 0; other < graph.num_aps(); ++other) {
      if (other == ap || graph.adjacent(ap, other)) continue;
      const net::Channel& other_ch =
          assignment[static_cast<std::size_t>(other)];
      if (other_ch.overlap_fraction(own) <= 0.0) continue;
      key.push_back(static_cast<std::uint64_t>(other));
      key.push_back(channel_code(other_ch));
      key.push_back(double_bits(activity[static_cast<std::size_t>(other)]));
    }
  }
  return key;
}

double CachedOracle::total_bps(const net::ChannelAssignment& assignment) const {
  const int n_aps = snap_.num_aps();
  if (static_cast<int>(assignment.size()) != n_aps) {
    throw std::invalid_argument("assignment size != AP count");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.calls;
  }
  // Unweighted activity shares of every AP under this assignment: the
  // unweighted medium shares and (when sinr is on) both the hidden
  // interferers' activity factors and their cache-key signature bits.
  // They depend only on the per-AP channels, so the whole vector is
  // memoized keyed by the packed channel codes.
  CellKey share_key(static_cast<std::size_t>(n_aps));
  for (int ap = 0; ap < n_aps; ++ap) {
    share_key[static_cast<std::size_t>(ap)] =
        channel_code(assignment[static_cast<std::size_t>(ap)]);
  }
  const std::vector<double>* activity_ptr = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = share_memo_.find(share_key);
    if (it != share_memo_.end()) {
      ++stats_.share_hits;
      activity_ptr = &it->second;
    }
  }
  if (activity_ptr == nullptr) {
    std::vector<double> computed;
    snap_.unweighted_shares(assignment, computed);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.share_evals;
    activity_ptr =
        &share_memo_.emplace(std::move(share_key), std::move(computed))
             .first->second;
  }
  const std::vector<double>& activity = *activity_ptr;
  const bool weighted = wlan_.config().weighted_contention;
  double total = 0.0;
  for (int ap = 0; ap < n_aps; ++ap) {
    if (snap_.cell_clients(ap).empty()) continue;  // goodput is exactly 0
    const double share = weighted ? snap_.weighted_share(assignment, ap)
                                  : activity[static_cast<std::size_t>(ap)];
    CellKey key = cell_key(ap, assignment, share, activity);
    auto& memo = memo_[static_cast<std::size_t>(ap)];
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = memo.find(key);
      if (it != memo.end()) {
        ++stats_.cell_hits;
        total += it->second;
        continue;
      }
    }
    const sim::ApStats cell =
        snap_.evaluate_cell(ap, share, assignment, activity, traffic_);
    double goodput;
    if (weights_.empty()) {
      goodput = cell.goodput_bps;
    } else {
      // Load-weighted cell objective: the cell's own goodput is already
      // the sum of its clients' goodputs, so the weighted variant just
      // scales each term before summing.
      goodput = 0.0;
      for (std::size_t i = 0; i < cell.client_ids.size(); ++i) {
        goodput += weights_[static_cast<std::size_t>(cell.client_ids[i])] *
                   cell.client_goodput_bps[i];
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cell_evals;
      memo.emplace(std::move(key), goodput);
    }
    total += goodput;
  }
  return total;
}

OracleCacheStats CachedOracle::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ThroughputOracle make_cached_oracle(const sim::Wlan& wlan,
                                    mac::TrafficType traffic) {
  struct State {
    std::mutex mutex;
    std::shared_ptr<CachedOracle> cache;
  };
  auto state = std::make_shared<State>();
  return [&wlan, traffic, state](const net::Association& assoc,
                                 const net::ChannelAssignment& trial) {
    std::shared_ptr<CachedOracle> cache;
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (!state->cache || state->cache->association() != assoc) {
        state->cache = std::make_shared<CachedOracle>(wlan, assoc, traffic);
      }
      cache = state->cache;
    }
    return cache->total_bps(trial);
  };
}

}  // namespace acorn::core
