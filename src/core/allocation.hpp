// ACORN's channel bonding selection — Algorithm 2 of the paper.
//
// Colors are 20 MHz basic channels plus composite 40 MHz bonds. Starting
// from an arbitrary assignment, the algorithm is an iterated greedy
// ("gradient descent" in the paper's words): in every step, each AP that
// has not yet switched this round estimates the aggregate network
// throughput for every candidate color with all other APs fixed; the AP
// with the largest improvement (rank) commits. A round ends when every AP
// has had its chance; rounds repeat until the aggregate gain falls below
// epsilon (the paper uses 1.05 — stop at <= 5% improvement).
//
// The channel allocation decision problem is NP-complete (reduction from
// graph k-coloring, §4.2); this greedy carries a worst-case
// O(1/(Delta+1)) approximation bound but is near-optimal in practice
// (Fig. 14).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/channels.hpp"
#include "sim/netkernel.hpp"
#include "sim/wlan.hpp"

namespace acorn::core {

class CachedOracle;

struct AllocationConfig {
  /// Stop when the round's aggregate throughput is < epsilon * previous.
  double epsilon = 1.05;
  /// Safety bound on rounds (the paper's loop always terminated quickly).
  int max_rounds = 16;
  /// When no oracle is supplied, use the incremental CachedOracle
  /// (interference graph + client lists built once per allocate() run,
  /// per-cell results memoized) instead of a full Wlan::evaluate per
  /// candidate. Results are bit-identical; this only changes speed.
  bool cache_oracle = true;
  /// Worker threads for the candidate (AP, color) scan. 1 = serial. The
  /// parallel scan picks the same winner as the serial one (first
  /// candidate in scan order attaining the maximum), so results are
  /// bit-identical. With > 1 the oracle must be thread-safe — the default
  /// oracles (cached and uncached) are; a custom stateful one may not be.
  /// The workers live in one persistent pool for the whole allocate()
  /// run (no per-iteration thread spawns).
  int num_threads = 1;
  /// Score candidates through CachedOracle::total_bps_batch (shared
  /// per-base analysis + SIMD multi-candidate cell kernel) instead of
  /// one oracle call per candidate. Only engages when the scan runs
  /// against a CachedOracle (the default when no custom oracle is
  /// supplied); results are bit-identical at any batch size, thread
  /// count or kernel — this only changes speed.
  bool batch_scan = true;
  /// Candidates per total_bps_batch call (also the SIMD lane-fill unit).
  int batch_size = 64;
  /// Kernel selection for the batched scan (kAuto = SIMD where built).
  sim::BatchKernel batch_kernel = sim::BatchKernel::kAuto;
};

/// What an AP can observe when estimating "aggregate throughput with me
/// on channel c, everyone else fixed". Defaults to the exact flow-level
/// evaluator; tests and ablations can plug in noisy estimators.
using ThroughputOracle = std::function<double(
    const net::Association&, const net::ChannelAssignment&)>;

struct AllocationResult {
  net::ChannelAssignment assignment;
  /// Total oracle evaluations (the paper's k counter): the initial
  /// y(F_0) call plus one per candidate (AP, color) trial. 64-bit: a
  /// large sweep overflows 32 bits long before it overflows anyone's
  /// patience now that the scan is batched.
  std::int64_t evaluations = 0;
  /// Number of committed channel switches.
  int switches = 0;
  /// Aggregate throughput after each committed switch (bps).
  std::vector<double> trajectory_bps;
  /// Final aggregate throughput (bps).
  double final_bps = 0.0;
};

class ChannelAllocator {
 public:
  ChannelAllocator(net::ChannelPlan plan, AllocationConfig config = {});

  const net::ChannelPlan& plan() const { return plan_; }
  const AllocationConfig& config() const { return config_; }

  /// Run Algorithm 2 from `initial`. The oracle defaults to the exact
  /// evaluator — the incremental CachedOracle when config.cache_oracle is
  /// set (bit-identical to, and much faster than, a full
  /// wlan.evaluate(...).total_goodput_bps per candidate).
  AllocationResult allocate(const sim::Wlan& wlan,
                            const net::Association& assoc,
                            net::ChannelAssignment initial,
                            ThroughputOracle oracle = {}) const;

  /// Run Algorithm 2 against an existing CachedOracle (which must be
  /// bound to `assoc`). This is the fast path: with config.batch_scan
  /// set the candidate scan goes through the oracle's batched
  /// multi-candidate evaluator. Bit-identical to the ThroughputOracle
  /// overload wrapping `oracle.total_bps`.
  AllocationResult allocate(const sim::Wlan& wlan,
                            const net::Association& assoc,
                            net::ChannelAssignment initial,
                            const CachedOracle& oracle) const;

  /// Uniform-random initial assignment over all colors (the paper starts
  /// "by randomly assigning initial channels").
  net::ChannelAssignment random_assignment(int num_aps,
                                           util::Rng& rng) const;

 private:
  net::ChannelPlan plan_;
  AllocationConfig config_;
};

/// The paper's upper bound Y* = sum_i X_i^isol: every AP isolated on its
/// best width (used by the Fig. 14 approximation-ratio study).
double isolated_upper_bound_bps(const sim::Wlan& wlan,
                                const net::Association& assoc,
                                mac::TrafficType traffic =
                                    mac::TrafficType::kUdp);

}  // namespace acorn::core
