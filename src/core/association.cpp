#include "core/association.hpp"

#include <algorithm>

namespace acorn::core {

UserAssociation::UserAssociation(AssociationConfig config) : config_(config) {}

std::vector<CandidateUtility> UserAssociation::candidate_utilities(
    const sim::Wlan& wlan, const net::Association& assoc,
    const net::ChannelAssignment& assignment, int u) const {
  const std::vector<int> in_range =
      sim::aps_in_range(wlan, u, config_.min_rss_dbm);
  if (in_range.empty()) return {};

  // The interference graph of the *current* state; the joining client
  // reads M_i from broadcast beacons, which reflect the network before it
  // commits anywhere.
  const net::InterferenceGraph graph(wlan.topology(), wlan.budget(), assoc,
                                     wlan.config().interference);

  // Trial-association beacons: K_j, ATD_j and the delay list include u.
  struct PerAp {
    sim::Beacon beacon;
    double d_u = 0.0;  // u's own delay at this AP
  };
  std::vector<PerAp> info;
  info.reserve(in_range.size());
  for (int ap : in_range) {
    PerAp p;
    p.beacon =
        sim::make_beacon_with_client(wlan, graph, assoc, assignment, ap, u);
    for (std::size_t k = 0; k < p.beacon.client_ids.size(); ++k) {
      if (p.beacon.client_ids[k] == u) {
        p.d_u = p.beacon.client_delays_s_per_bit[k];
      }
    }
    info.push_back(std::move(p));
  }

  std::vector<CandidateUtility> out;
  out.reserve(in_range.size());
  for (std::size_t i = 0; i < in_range.size(); ++i) {
    CandidateUtility cu;
    cu.ap_id = in_range[i];
    const sim::Beacon& bi = info[i].beacon;
    cu.x_with = bi.access_share / bi.atd_s_per_bit;
    const double atd_without = bi.atd_s_per_bit - info[i].d_u;
    cu.x_without =
        atd_without > 0.0 ? bi.access_share / atd_without : 0.0;
    // First term of Eq. 4: the chosen cell's total throughput with u.
    cu.utility = bi.num_clients * cu.x_with;
    // Second term: every other in-range cell's throughput without u
    // (K_j - 1 remaining clients at X_wo each).
    for (std::size_t j = 0; j < in_range.size(); ++j) {
      if (j == i) continue;
      const sim::Beacon& bj = info[j].beacon;
      const double atd_wo = bj.atd_s_per_bit - info[j].d_u;
      const double x_wo = atd_wo > 0.0 ? bj.access_share / atd_wo : 0.0;
      cu.utility += (bj.num_clients - 1) * x_wo;
    }
    out.push_back(cu);
  }
  return out;
}

std::optional<int> UserAssociation::select_ap(
    const sim::Wlan& wlan, const net::Association& assoc,
    const net::ChannelAssignment& assignment, int u) const {
  const std::vector<CandidateUtility> utilities =
      candidate_utilities(wlan, assoc, assignment, u);
  if (utilities.empty()) return std::nullopt;
  const auto best = std::max_element(
      utilities.begin(), utilities.end(),
      [](const CandidateUtility& a, const CandidateUtility& b) {
        return a.utility < b.utility;
      });
  return best->ap_id;
}

}  // namespace acorn::core
