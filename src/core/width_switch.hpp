// Opportunistic channel-width fallback (paper §5.2, "Evaluating ACORN
// with mobility"): an AP holding a 40 MHz allocation may use either the
// full bond or one of its 20 MHz halves without changing the interference
// it projects on neighbors, so it can track its clients' link quality and
// switch widths on the fly.
#pragma once

#include <vector>

#include "sim/wlan.hpp"

namespace acorn::core {

struct WidthDecision {
  phy::ChannelWidth width = phy::ChannelWidth::k40MHz;
  double cell_bps_20 = 0.0;
  double cell_bps_40 = 0.0;
};

/// Compare the cell's throughput on the bond vs on a single 20 MHz half,
/// given the AP's current clients, and pick the better width. Only
/// meaningful when the AP holds a 40 MHz allocation; medium share is
/// unchanged by the choice (the occupied spectrum can only shrink).
WidthDecision decide_width(const sim::Wlan& wlan, int ap,
                           const std::vector<int>& clients,
                           double medium_share = 1.0);

}  // namespace acorn::core
