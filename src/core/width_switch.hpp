// Opportunistic channel-width fallback (paper §5.2, "Evaluating ACORN
// with mobility"): an AP holding a 40 MHz allocation may use either the
// full bond or one of its 20 MHz halves without changing the interference
// it projects on neighbors, so it can track its clients' link quality and
// switch widths on the fly.
#pragma once

#include <optional>
#include <vector>

#include "sim/wlan.hpp"

namespace acorn::core {

struct WidthDecision {
  phy::ChannelWidth width = phy::ChannelWidth::k40MHz;
  /// Best 20 MHz half (the halves only differ under the
  /// hidden-interference model; see the context overload below).
  double cell_bps_20 = 0.0;
  double cell_bps_40 = 0.0;
  /// Set by the context overload: the operating channel to use — the
  /// full bond, or the better 20 MHz half (primary on ties).
  std::optional<net::Channel> channel;
  /// Per-half breakdown from the context overload (equal when the
  /// halves are indistinguishable, e.g. hidden interference off).
  double cell_bps_20_primary = 0.0;
  double cell_bps_20_secondary = 0.0;
};

/// Compare the cell's throughput on the bond vs on a single 20 MHz half,
/// given the AP's current clients, and pick the better width. Only
/// meaningful when the AP holds a 40 MHz allocation; medium share is
/// unchanged by the choice (the occupied spectrum can only shrink).
/// Width-only comparison: it cannot see which basic channels the bond
/// occupies, so it cannot tell the halves apart — callers that know the
/// assignment should use the context overload below.
WidthDecision decide_width(const sim::Wlan& wlan, int ap,
                           const std::vector<int>& clients,
                           double medium_share = 1.0);

/// Context-aware variant: evaluates the cell on the full bond AND on
/// each 20 MHz half under the real (graph, assignment) context, so
/// secondary-channel hidden interference distinguishes the halves
/// instead of silently falling back to the primary. `assignment[ap]`
/// must be the AP's 40 MHz allocation; ties between halves go to the
/// primary (the legacy behavior), a strictly better secondary half wins.
WidthDecision decide_width(const sim::Wlan& wlan, int ap,
                           const std::vector<int>& clients,
                           const net::InterferenceGraph& graph,
                           const net::ChannelAssignment& assignment,
                           double medium_share = 1.0,
                           mac::TrafficType traffic =
                               mac::TrafficType::kUdp);

}  // namespace acorn::core
