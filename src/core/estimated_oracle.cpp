#include "core/estimated_oracle.hpp"

#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "mac/anomaly.hpp"

namespace acorn::core {

ThroughputOracle make_measurement_oracle(const sim::Wlan& wlan,
                                         net::ChannelAssignment measured_on,
                                         phy::LinkEstimator estimator) {
  if (static_cast<int>(measured_on.size()) != wlan.topology().num_aps()) {
    throw std::invalid_argument("measured_on size != AP count");
  }
  // Per-association caches, same shape as CachedOracle: the graph and
  // client lists depend only on the association and are rebuilt only when
  // the association changes; per-cell throughput depends only on the
  // cell's target width and medium share once the association is fixed,
  // so it is memoized on (ap, width) x share.
  struct State {
    std::mutex mutex;
    net::Association assoc;
    std::unique_ptr<net::InterferenceGraph> graph;
    std::vector<std::vector<int>> clients;
    // memo[2 * ap + width_index]: share bit-pattern -> cell_bps.
    std::vector<std::unordered_map<std::uint64_t, double>> memo;
  };
  auto state = std::make_shared<State>();
  return [&wlan, measured_on = std::move(measured_on),
          estimator = std::move(estimator), state](
             const net::Association& assoc,
             const net::ChannelAssignment& trial) {
    const int n_aps = wlan.topology().num_aps();
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (!state->graph || state->assoc != assoc) {
        state->assoc = assoc;
        state->graph = std::make_unique<net::InterferenceGraph>(
            wlan.topology(), wlan.budget(), assoc,
            wlan.config().interference);
        state->clients = wlan.clients_by_ap(assoc);
        state->memo.assign(static_cast<std::size_t>(2 * n_aps), {});
      }
    }
    const int payload_bits = wlan.config().payload_bytes * 8;
    double total = 0.0;
    for (int ap = 0; ap < n_aps; ++ap) {
      const std::vector<int>& clients =
          state->clients[static_cast<std::size_t>(ap)];
      if (clients.empty()) continue;
      const phy::ChannelWidth target_width =
          trial[static_cast<std::size_t>(ap)].width();
      const double share =
          net::medium_access_share(*state->graph, trial, ap);
      const std::size_t slot = static_cast<std::size_t>(
          2 * ap + (target_width == phy::ChannelWidth::k40MHz ? 1 : 0));
      const std::uint64_t key = std::bit_cast<std::uint64_t>(share);
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        const auto it = state->memo[slot].find(key);
        if (it != state->memo[slot].end()) {
          total += it->second;
          continue;
        }
      }
      const phy::ChannelWidth measured_width =
          measured_on[static_cast<std::size_t>(ap)].width();
      std::vector<mac::CellClient> cell;
      cell.reserve(clients.size());
      for (int c : clients) {
        // What the AP actually measured: SNR on its current width.
        const double measured_snr =
            wlan.client_snr_db(ap, c, measured_width);
        const phy::LinkEstimate best = estimator.best_estimate(
            measured_snr, measured_width, target_width, wlan.config().gi);
        const double rate = phy::mcs(best.mcs_index)
                                .rate_bps(target_width, wlan.config().gi);
        cell.push_back(mac::CellClient{c, rate, best.per});
      }
      const double cell_bps =
          mac::anomaly_throughput(wlan.config().timing, cell, share,
                                  payload_bits)
              .cell_bps;
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->memo[slot].emplace(key, cell_bps);
      }
      total += cell_bps;
    }
    return total;
  };
}

}  // namespace acorn::core
