#include "core/estimated_oracle.hpp"

#include <stdexcept>

#include "mac/anomaly.hpp"

namespace acorn::core {

ThroughputOracle make_measurement_oracle(const sim::Wlan& wlan,
                                         net::ChannelAssignment measured_on,
                                         phy::LinkEstimator estimator) {
  if (static_cast<int>(measured_on.size()) != wlan.topology().num_aps()) {
    throw std::invalid_argument("measured_on size != AP count");
  }
  return [&wlan, measured_on = std::move(measured_on),
          estimator = std::move(estimator)](
             const net::Association& assoc,
             const net::ChannelAssignment& trial) {
    const net::InterferenceGraph graph(wlan.topology(), wlan.budget(), assoc,
                                       wlan.config().interference);
    const int payload_bits = wlan.config().payload_bytes * 8;
    double total = 0.0;
    for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
      const std::vector<int> clients = wlan.clients_of(assoc, ap);
      if (clients.empty()) continue;
      const phy::ChannelWidth measured_width =
          measured_on[static_cast<std::size_t>(ap)].width();
      const phy::ChannelWidth target_width =
          trial[static_cast<std::size_t>(ap)].width();
      std::vector<mac::CellClient> cell;
      cell.reserve(clients.size());
      for (int c : clients) {
        // What the AP actually measured: SNR on its current width.
        const double measured_snr =
            wlan.client_snr_db(ap, c, measured_width);
        const phy::LinkEstimate best = estimator.best_estimate(
            measured_snr, measured_width, target_width, wlan.config().gi);
        const double rate = phy::mcs(best.mcs_index)
                                .rate_bps(target_width, wlan.config().gi);
        cell.push_back(mac::CellClient{c, rate, best.per});
      }
      const double share = net::medium_access_share(graph, trial, ap);
      total += mac::anomaly_throughput(wlan.config().timing, cell, share,
                                       payload_bits)
                   .cell_bps;
    }
    return total;
  };
}

}  // namespace acorn::core
