// The ACORN controller: orchestrates the two modules of Fig. 7 — user
// association (Algorithm 1) as clients arrive, then channel bonding
// selection (Algorithm 2) — with the periodicity the paper derives from
// its association-trace analysis (T = 30 minutes).
#pragma once

#include <optional>

#include "core/allocation.hpp"
#include "core/association.hpp"

namespace acorn::core {

struct AcornConfig {
  net::ChannelPlan plan{12};
  AssociationConfig association;
  AllocationConfig allocation;
  /// Channel (re-)allocation period; §4.2 picks 30 min from the CDF of
  /// association durations (median ~31 min).
  double period_s = 1800.0;
  /// Extra association+allocation passes after the initial configuration.
  /// Models the system's periodic operation: clients re-evaluate their
  /// AP choice under the settled channels, then channels are re-tuned.
  /// The best evaluated configuration is kept.
  int refine_rounds = 2;
};

struct ConfigureResult {
  net::Association association;
  net::ChannelAssignment assignment;
  AllocationResult allocation;
  sim::Evaluation evaluation;
};

class AcornController {
 public:
  explicit AcornController(AcornConfig config = {});

  const AcornConfig& config() const { return config_; }
  const UserAssociation& association_module() const { return association_; }
  const ChannelAllocator& allocation_module() const { return allocator_; }

  /// One Algorithm-1 step: associate client `u` into the current state.
  /// Returns the chosen AP (nullopt if no AP is in range; the client
  /// stays unassociated).
  std::optional<int> associate_client(const sim::Wlan& wlan,
                                      net::Association& assoc,
                                      const net::ChannelAssignment& assignment,
                                      int u) const;

  /// Full auto-configuration of a deployment: random initial channels,
  /// clients activated one by one in `arrival_order` (defaults to id
  /// order), then Algorithm 2. Mirrors the paper's §5.2 procedure.
  /// Every allocation pass (initial and refinement) runs on the
  /// incremental CachedOracle unless config.allocation.cache_oracle is
  /// cleared — each pass holds the association fixed, so the interference
  /// graph and client lists are built once per pass.
  ConfigureResult configure(const sim::Wlan& wlan, util::Rng& rng,
                            const std::vector<int>* arrival_order = nullptr,
                            mac::TrafficType traffic =
                                mac::TrafficType::kUdp) const;

  /// Re-run channel allocation only (one period-T maintenance pass).
  AllocationResult reallocate(const sim::Wlan& wlan,
                              const net::Association& assoc,
                              net::ChannelAssignment current) const;

 private:
  AcornConfig config_;
  UserAssociation association_;
  ChannelAllocator allocator_;
};

}  // namespace acorn::core
