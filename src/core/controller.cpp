#include "core/controller.hpp"

#include <numeric>

namespace acorn::core {

AcornController::AcornController(AcornConfig config)
    : config_(config),
      association_(config.association),
      allocator_(config.plan, config.allocation) {}

std::optional<int> AcornController::associate_client(
    const sim::Wlan& wlan, net::Association& assoc,
    const net::ChannelAssignment& assignment, int u) const {
  const std::optional<int> ap =
      association_.select_ap(wlan, assoc, assignment, u);
  if (ap) assoc[static_cast<std::size_t>(u)] = *ap;
  return ap;
}

ConfigureResult AcornController::configure(
    const sim::Wlan& wlan, util::Rng& rng,
    const std::vector<int>* arrival_order, mac::TrafficType traffic) const {
  const int n_clients = wlan.topology().num_clients();
  ConfigureResult result;
  result.association.assign(static_cast<std::size_t>(n_clients),
                            net::kUnassociated);
  net::ChannelAssignment initial =
      allocator_.random_assignment(wlan.topology().num_aps(), rng);

  std::vector<int> order;
  if (arrival_order != nullptr) {
    order = *arrival_order;
  } else {
    order.resize(static_cast<std::size_t>(n_clients));
    std::iota(order.begin(), order.end(), 0);
  }
  for (int u : order) {
    associate_client(wlan, result.association, initial, u);
  }

  result.allocation =
      allocator_.allocate(wlan, result.association, std::move(initial));
  result.assignment = result.allocation.assignment;
  result.evaluation =
      wlan.evaluate(result.association, result.assignment, traffic);

  // Periodic refinement: re-run association under the settled channels,
  // then re-tune channels; keep the best configuration actually measured.
  for (int round = 0; round < config_.refine_rounds; ++round) {
    net::Association assoc = result.association;
    for (int u : order) {
      assoc[static_cast<std::size_t>(u)] = net::kUnassociated;
      associate_client(wlan, assoc, result.assignment, u);
    }
    AllocationResult realloc =
        allocator_.allocate(wlan, assoc, result.assignment);
    const sim::Evaluation eval =
        wlan.evaluate(assoc, realloc.assignment, traffic);
    if (eval.total_goodput_bps <= result.evaluation.total_goodput_bps) {
      break;  // converged (or the move did not help): keep the incumbent
    }
    result.association = std::move(assoc);
    result.assignment = realloc.assignment;
    result.allocation = std::move(realloc);
    result.evaluation = eval;
  }
  return result;
}

AllocationResult AcornController::reallocate(
    const sim::Wlan& wlan, const net::Association& assoc,
    net::ChannelAssignment current) const {
  return allocator_.allocate(wlan, assoc, std::move(current));
}

}  // namespace acorn::core
