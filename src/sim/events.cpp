#include "sim/events.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace acorn::sim {

void EventQueue::schedule(double time_s, Handler handler) {
  if (time_s < now_) throw std::invalid_argument("scheduling in the past");
  if (!handler) throw std::invalid_argument("empty handler");
  heap_.push(Entry{time_s, next_seq_++, std::move(handler)});
}

void EventQueue::schedule_in(double delay_s, Handler handler) {
  if (delay_s < 0.0) throw std::invalid_argument("negative delay");
  schedule(now_ + delay_s, std::move(handler));
}

void EventQueue::run_until(double t_end_s) {
  while (!heap_.empty() && heap_.top().time <= t_end_s) {
    // Copy out before pop: the handler may schedule new events.
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.time;
    ++processed_;
    entry.handler(now_);
  }
  // Advance the clock to the boundary, but never to an infinite horizon
  // (run() drains the queue and leaves now() at the last event time).
  if (std::isfinite(t_end_s) && now_ < t_end_s) now_ = t_end_s;
}

void EventQueue::run() { run_until(std::numeric_limits<double>::infinity()); }

}  // namespace acorn::sim
