// Pedestrian mobility for the paper's Fig. 12/13 experiment: a client
// walks along a piecewise-linear trajectory while its AP link quality
// changes; ACORN tracks it and switches widths opportunistically.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace acorn::sim {

struct Waypoint {
  double time_s = 0.0;
  net::Point position;
};

class Trajectory {
 public:
  /// Waypoints must be in strictly increasing time order.
  explicit Trajectory(std::vector<Waypoint> waypoints);

  /// Linear interpolation; clamped to the first/last waypoint outside
  /// the trajectory's time span.
  net::Point position_at(double time_s) const;

  double start_s() const { return waypoints_.front().time_s; }
  double end_s() const { return waypoints_.back().time_s; }
  double duration_s() const { return end_s() - start_s(); }

  /// Straight walk from `from` to `to` over [start_s, start_s + dur_s].
  static Trajectory line(net::Point from, net::Point to, double start_s,
                         double dur_s);

 private:
  std::vector<Waypoint> waypoints_;
};

}  // namespace acorn::sim
