#include "sim/arrivals.hpp"

#include <stdexcept>

namespace acorn::sim {

std::vector<ArrivalEvent> generate_arrivals(const ArrivalConfig& config,
                                            const DurationSampler& durations,
                                            util::Rng& rng) {
  if (config.rate_per_s <= 0.0 || config.horizon_s <= 0.0 ||
      config.num_client_slots < 1) {
    throw std::invalid_argument("bad arrival config");
  }
  if (!durations) throw std::invalid_argument("empty duration sampler");
  std::vector<ArrivalEvent> out;
  double t = 0.0;
  int slot = 0;
  while (true) {
    t += rng.exponential(config.rate_per_s);
    if (t >= config.horizon_s) break;
    ArrivalEvent ev;
    ev.arrive_s = t;
    ev.depart_s = t + durations(rng);
    ev.client_slot = slot;
    slot = (slot + 1) % config.num_client_slots;
    out.push_back(ev);
  }
  return out;
}

int active_sessions(const std::vector<ArrivalEvent>& sessions, double t_s) {
  int n = 0;
  for (const ArrivalEvent& s : sessions) {
    if (s.arrive_s <= t_s && t_s < s.depart_s) ++n;
  }
  return n;
}

}  // namespace acorn::sim
