#include "sim/scenario.hpp"

#include <utility>

namespace acorn::sim {

Wlan ScenarioBuilder::build() const {
  net::Topology topo;
  for (std::size_t a = 0; a < cells.size(); ++a) {
    topo.add_ap(net::Point{static_cast<double>(a) * 100.0, 0.0});
  }
  std::vector<std::pair<int, double>> client_spec;  // (home ap, loss)
  for (std::size_t a = 0; a < cells.size(); ++a) {
    for (double loss : cells[a].client_losses_db) {
      topo.add_client(net::Point{
          static_cast<double>(a) * 100.0 + 1.0,
          1.0 + static_cast<double>(client_spec.size())});
      client_spec.emplace_back(static_cast<int>(a), loss);
    }
  }
  util::Rng rng(7);
  net::PathLossModel plm;
  net::LinkBudget budget(topo, plm, rng);
  for (int a = 0; a < topo.num_aps(); ++a) {
    for (int b = a + 1; b < topo.num_aps(); ++b) {
      budget.set_ap_ap_loss_db(a, b, ap_ap_loss_db);
    }
    for (int c = 0; c < topo.num_clients(); ++c) {
      const auto& [home, loss] = client_spec[static_cast<std::size_t>(c)];
      budget.set_ap_client_loss_db(a, c, a == home ? loss : cross_loss_db);
    }
  }
  return Wlan(std::move(topo), std::move(budget), config);
}

net::Association ScenarioBuilder::intended_association() const {
  net::Association assoc;
  for (std::size_t a = 0; a < cells.size(); ++a) {
    for (std::size_t c = 0; c < cells[a].client_losses_db.size(); ++c) {
      assoc.push_back(static_cast<int>(a));
    }
  }
  return assoc;
}

}  // namespace acorn::sim
