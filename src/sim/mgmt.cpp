#include "sim/mgmt.hpp"

#include <algorithm>

namespace acorn::sim {

int co_channel_neighbors(const net::InterferenceGraph& graph,
                         const net::ChannelAssignment& assignment, int ap) {
  return static_cast<int>(net::contenders(graph, assignment, ap).size());
}

namespace {
Beacon build_beacon(const Wlan& wlan, const net::InterferenceGraph& graph,
                    const net::ChannelAssignment& assignment, int ap,
                    const std::vector<int>& clients) {
  Beacon beacon;
  beacon.ap_id = ap;
  beacon.channel = assignment[static_cast<std::size_t>(ap)];
  beacon.num_clients = static_cast<int>(clients.size());
  beacon.access_share = net::medium_access_share(graph, assignment, ap);
  const phy::ChannelWidth width = beacon.channel.width();
  for (int c : clients) {
    const double d = wlan.client_delay_s_per_bit(ap, c, width);
    beacon.client_ids.push_back(c);
    beacon.client_delays_s_per_bit.push_back(d);
    beacon.atd_s_per_bit += d;
  }
  return beacon;
}
}  // namespace

Beacon make_beacon(const Wlan& wlan, const net::InterferenceGraph& graph,
                   const net::Association& assoc,
                   const net::ChannelAssignment& assignment, int ap) {
  return build_beacon(wlan, graph, assignment, ap, wlan.clients_of(assoc, ap));
}

Beacon make_beacon_with_client(const Wlan& wlan,
                               const net::InterferenceGraph& graph,
                               const net::Association& assoc,
                               const net::ChannelAssignment& assignment,
                               int ap, int joining_client) {
  std::vector<int> clients = wlan.clients_of(assoc, ap);
  if (std::find(clients.begin(), clients.end(), joining_client) ==
      clients.end()) {
    clients.push_back(joining_client);
  }
  return build_beacon(wlan, graph, assignment, ap, clients);
}

std::vector<int> aps_in_range(const Wlan& wlan, int client,
                              double min_rss_dbm) {
  std::vector<int> out;
  for (int ap = 0; ap < wlan.topology().num_aps(); ++ap) {
    const double rss =
        wlan.budget().rx_at_client_dbm(wlan.topology(), ap, client);
    if (rss >= min_rss_dbm) out.push_back(ap);
  }
  return out;
}

}  // namespace acorn::sim
