// Client-side association state machine: the 802.11 station lifecycle
// the paper's Click utility drives — scan for beacons, pick an AP (the
// policy is pluggable: ACORN's Algorithm 1 or a baseline), associate,
// monitor the link, roam when a sufficiently better AP appears, and
// detach on departure. Runs on the discrete-event engine.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "sim/events.hpp"

namespace acorn::sim {

enum class ClientState {
  kIdle,         // not on the network
  kScanning,     // collecting beacons
  kAssociating,  // handshake with the chosen AP
  kAssociated,   // on the network, link monitor running
};

const char* to_string(ClientState state);

struct ClientFsmConfig {
  /// Full passive scan duration.
  double scan_duration_s = 0.5;
  /// Association handshake duration.
  double associate_duration_s = 0.1;
  /// Link-monitor cadence while associated.
  double monitor_interval_s = 2.0;
  /// Roam when another AP beats the serving AP by this margin (dB).
  double roam_hysteresis_db = 6.0;
  /// Below this serving RSS the client rescans regardless of margin.
  double min_serving_rss_dbm = -97.0;
};

/// One state transition, recorded for inspection.
struct ClientTransition {
  double time_s = 0.0;
  ClientState from = ClientState::kIdle;
  ClientState to = ClientState::kIdle;
  int ap = -1;  // serving AP after the transition (-1 = none)
};

class ClientFsm {
 public:
  /// RSS of (ap, this client) in dBm at the current instant; the test or
  /// simulation scripts time variation through this hook.
  using RssProvider = std::function<double(int ap)>;
  /// Association policy: the AP to join right now (nullopt = none
  /// reachable). Called at the end of each scan.
  using Selector = std::function<std::optional<int>()>;

  ClientFsm(int client_id, ClientFsmConfig config, RssProvider rss,
            Selector selector);

  int client_id() const { return client_id_; }
  ClientState state() const { return state_; }
  /// Serving AP id, or -1 when not associated.
  int serving_ap() const { return serving_ap_; }
  const std::vector<ClientTransition>& history() const { return history_; }

  /// Join the network: schedules a scan on `queue` starting now.
  void join(EventQueue& queue);
  /// Detach immediately (departure). Pending events become no-ops.
  void leave(EventQueue& queue);

 private:
  void transition(double now, ClientState to);
  void begin_scan(EventQueue& queue, double now);
  void finish_scan(EventQueue& queue, double now);
  void finish_association(EventQueue& queue, double now, int ap);
  void monitor(EventQueue& queue, double now);

  int client_id_;
  ClientFsmConfig config_;
  RssProvider rss_;
  Selector selector_;
  ClientState state_ = ClientState::kIdle;
  int serving_ap_ = -1;
  // Generation counter: leave()/new scans invalidate in-flight events.
  std::uint64_t generation_ = 0;
  std::vector<ClientTransition> history_;
};

}  // namespace acorn::sim
