// The management plane ACORN's implementation builds with Click and
// driver hooks (paper §5.1): modified beacons carrying (K_i, d_cl,
// ATD_i, M_i), the client-side scan that collects them, and the
// IAPP-style census of co-channel neighbor APs used to estimate M_a.
#pragma once

#include <vector>

#include "sim/wlan.hpp"

namespace acorn::sim {

/// The paper's modified beacon contents.
struct Beacon {
  int ap_id = 0;
  net::Channel channel = net::Channel::basic(0);
  /// K_i: number of associated clients (including a joining client when
  /// the beacon is computed for a prospective association).
  int num_clients = 0;
  /// ATD_i: aggregate transmission delay (s/bit).
  double atd_s_per_bit = 0.0;
  /// M_i: channel access share (1 with saturated traffic, no contention).
  double access_share = 0.0;
  /// d_cl for each client, aligned with client_ids.
  std::vector<int> client_ids;
  std::vector<double> client_delays_s_per_bit;
};

/// IAPP census: |con_a| co-channel contenders from the interference
/// graph, the basis of the paper's M_a = 1/(|con_a|+1) estimate.
int co_channel_neighbors(const net::InterferenceGraph& graph,
                         const net::ChannelAssignment& assignment, int ap);

/// Build the beacon AP `ap` would broadcast under the given network
/// state. Delays are computed at the AP's assigned channel width.
Beacon make_beacon(const Wlan& wlan, const net::InterferenceGraph& graph,
                   const net::Association& assoc,
                   const net::ChannelAssignment& assignment, int ap);

/// The beacon AP `ap` would broadcast if `joining_client` were also
/// associated (the paper's info-gathering trial association): K_i,
/// ATD_i and the delay list include the prospective client.
Beacon make_beacon_with_client(const Wlan& wlan,
                               const net::InterferenceGraph& graph,
                               const net::Association& assoc,
                               const net::ChannelAssignment& assignment,
                               int ap, int joining_client);

/// APs whose beacons client `u` can receive (RSS above `min_rss_dbm`).
std::vector<int> aps_in_range(const Wlan& wlan, int client,
                              double min_rss_dbm = -97.0);

}  // namespace acorn::sim
