// Batched multi-candidate cell evaluation — the SIMD half of the
// allocation hot loop (the other half, incremental candidate analysis,
// lives in core/oracle_cache.cpp).
//
// Algorithm 2 scores B single-AP channel flips against one base
// assignment per scan. For one touched cell those B evaluations share
// the client list, the precomputed SNR columns and the rx-power matrix;
// only the lane-dependent inputs (cell channel, medium share, activity
// vector, the flipped AP's channel) vary. The kernels below lay the
// lane dimension out as contiguous arrays and run the pure-arithmetic
// stages — hidden-interference accumulation, the airtime/ATD chain,
// the share division and UDP transport scaling — as 4-wide double
// vectors (GCC/Clang vector extensions, target_clones avx2 dispatch on
// x86-64 glibc, same pattern as baseband/viterbi_kernel). Everything
// transcendental (log10 of the SINR penalty, the coded-PER chain,
// TCP's pow/sqrt) goes through the exact scalar routines the
// one-at-a-time path calls, with bit-identical inputs, so the SIMD and
// scalar kernels — and the batched and serial scans above them — agree
// to the last bit. A per-client PER memo additionally collapses lanes
// that land on the same (MCS row, SNR) to ONE coded-PER evaluation,
// which is most lanes of a same-width color sweep.
#include "sim/netkernel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mac/traffic.hpp"
#include "phy/mcs.hpp"
#include "util/units.hpp"

// The SIMD kernel needs GCC >= 12 or Clang for the vector extensions
// used here (the baseband kernel's floor). ACORN_NETKERNEL_FORCE_SCALAR
// benches/tests the scalar fallback on SIMD-capable hosts.
#if !defined(ACORN_NETKERNEL_FORCE_SCALAR) && \
    (defined(__clang__) || (defined(__GNUC__) && __GNUC__ >= 12))
#define ACORN_NETKERNEL_SIMD 1
#else
#define ACORN_NETKERNEL_SIMD 0
#endif

// target_clones dispatches through an IFUNC resolver that runs before
// sanitizer runtimes initialize — ThreadSanitizer binaries segfault on
// it — so clone only in uninstrumented builds (same guard as the
// Viterbi kernel).
#if defined(__SANITIZE_THREAD__)
#define ACORN_NETKERNEL_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ACORN_NETKERNEL_TSAN 1
#endif
#endif
#if ACORN_NETKERNEL_SIMD && defined(__x86_64__) && defined(__GLIBC__) && \
    !defined(ACORN_NETKERNEL_TSAN)
#define ACORN_NETKERNEL_TARGET_CLONES \
  __attribute__((target_clones("avx2", "default")))
#else
#define ACORN_NETKERNEL_TARGET_CLONES
#endif

namespace acorn::sim {

namespace {

// Allocation-free twins of Channel::overlap_fraction / conflicts: a
// Channel occupies the basic-index interval [primary, primary+width),
// so the occupied-set intersection is an integer interval intersection.
// Values are identical to the allocating originals (small-int ratios).
inline int occupied_count(const net::Channel& c) {
  return c.is_bonded() ? 2 : 1;
}

inline int shared_basics(const net::Channel& a, const net::Channel& b) {
  const int a0 = a.primary();
  const int a1 = a0 + occupied_count(a) - 1;
  const int b0 = b.primary();
  const int b1 = b0 + occupied_count(b) - 1;
  const int lo = a0 > b0 ? a0 : b0;
  const int hi = a1 < b1 ? a1 : b1;
  return hi >= lo ? hi - lo + 1 : 0;
}

inline double overlap_fraction_fast(const net::Channel& a,
                                    const net::Channel& b) {
  return static_cast<double>(shared_basics(a, b)) /
         static_cast<double>(occupied_count(a));
}

// Per-lane resolved evaluation context for one cell.
struct LaneCtx {
  net::Channel own = net::Channel::basic(0);  // cell channel under the lane
  const phy::RateTable* table = nullptr;
  const double* snrs = nullptr;  // cell SNR column at own's width
};

// The fixed per-attempt MAC overhead, evaluated with frame_airtime_s's
// exact expression order so fixed_s + payload_s reproduces its result.
inline double airtime_fixed_s(const mac::MacTiming& t) {
  const double overhead_us = t.difs_us + t.mean_backoff_slots * t.slot_us +
                             t.preamble_us + t.sifs_us + t.ack_us;
  return overhead_us * 1e-6 / t.ampdu_frames;
}

#if ACORN_NETKERNEL_SIMD

typedef double v4df __attribute__((vector_size(32)));
typedef long long v4di __attribute__((vector_size(32)));

// std::min(a, b) = (b < a) ? b : a as an exact bitwise select.
inline v4df vmin(v4df a, v4df b) {
  const v4di m = b < a;
  return std::bit_cast<v4df>((std::bit_cast<v4di>(b) & m) |
                             (std::bit_cast<v4di>(a) & ~m));
}

inline v4df vload(const double* p) {
  v4df v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void vstore(double* p, v4df v) { __builtin_memcpy(p, &v, sizeof(v)); }

inline v4df vbroadcast(double x) { return v4df{x, x, x, x}; }

// delay/ATD chain over one 4-lane chunk: per-lane
//   airtime = fixed_s + payload_bits / rate
//   attempts = 1 / (1 - min(per, per_cap))
//   atd += airtime * attempts / payload_bits
// — the exact op sequence of mac::per_bit_delay_s.
ACORN_NETKERNEL_TARGET_CLONES
void delay_accumulate_simd(const double* rate, const double* per,
                           double fixed_s, double per_cap,
                           double payload_bits, double* atd) {
  const v4df bits = vbroadcast(payload_bits);
  const v4df airtime = vbroadcast(fixed_s) + bits / vload(rate);
  const v4df p = vmin(vload(per), vbroadcast(per_cap));
  const v4df attempts = vbroadcast(1.0) / (vbroadcast(1.0) - p);
  vstore(atd, vload(atd) + airtime * attempts / bits);
}

// One hidden-interference term over a 4-lane chunk:
//   total += captured * activity * rx / subcarriers.
ACORN_NETKERNEL_TARGET_CLONES
void hidden_term_simd(const double* captured, const double* act, double rx,
                      const double* subc, double* total) {
  vstore(total, vload(total) +
                    vload(captured) * vload(act) * vbroadcast(rx) /
                        vload(subc));
}

// UDP transport accumulation over a 4-lane chunk: value += w * (eff *
// mac) — eff * mac is the entire UDP transport_goodput_bps body.
ACORN_NETKERNEL_TARGET_CLONES
void udp_accumulate_simd(const double* mac_bps, double udp_eff, double w,
                         bool weighted, double* value) {
  const v4df g = vbroadcast(udp_eff) * vload(mac_bps);
  vstore(value,
         vload(value) + (weighted ? vbroadcast(w) * g : g));
}

// Share-only TCP rescale over a 4-lane chunk:
//   g = min(c1 * mac, cap); value += w * g.
ACORN_NETKERNEL_TARGET_CLONES
void tcp_rescale_simd(const double* mac_bps, double c1, double cap, double w,
                      bool weighted, double* value) {
  const v4df g = vmin(vbroadcast(c1) * vload(mac_bps), vbroadcast(cap));
  vstore(value,
         vload(value) + (weighted ? vbroadcast(w) * g : g));
}

ACORN_NETKERNEL_TARGET_CLONES
void divide_simd(const double* num, const double* den, double* out) {
  vstore(out, vload(num) / vload(den));
}

#endif  // ACORN_NETKERNEL_SIMD

// Scalar fallbacks: the same per-lane op sequences in plain loops (the
// mac:: helpers are the original sources of those sequences).
void delay_accumulate_scalar(const mac::MacTiming& timing, const double* rate,
                             const double* per, int payload_bits,
                             double* atd, std::size_t n) {
  for (std::size_t l = 0; l < n; ++l) {
    atd[l] += mac::per_bit_delay_s(timing, rate[l], payload_bits, per[l]);
  }
}

// Per-call scratch, thread-local so concurrent scan workers never share
// and the steady-state hot path stays allocation-free.
struct BatchScratch {
  std::vector<LaneCtx> ctx;
  std::vector<double> snr;
  std::vector<double> rate;
  std::vector<double> per;
  std::vector<double> atd;
  std::vector<double> mac_bps;
  std::vector<double> hid;
  std::vector<double> captured;
  std::vector<double> act_at;
  std::vector<double> subc;
  std::vector<double> per_all;  // client-major lane PERs for transport
  std::vector<double> memo_snr;
  std::vector<int> memo_mcs;
  std::vector<double> memo_per;
};

BatchScratch& scratch() {
  static thread_local BatchScratch s;
  return s;
}

}  // namespace

bool NetSnapshot::batch_simd_enabled() { return ACORN_NETKERNEL_SIMD != 0; }

void NetSnapshot::evaluate_cells_batch(
    int ap, const net::ChannelAssignment& base,
    std::span<const CellLane> lanes, mac::TrafficType traffic,
    std::span<const double> client_weights, std::span<double> out_value,
    CellScanCache* capture, BatchKernel kernel) const {
  const std::size_t n_lanes = lanes.size();
  if (out_value.size() != n_lanes) {
    throw std::invalid_argument("out_value size != lane count");
  }
  if (capture != nullptr && n_lanes != 1) {
    throw std::invalid_argument("capture requires exactly one lane");
  }
  const std::span<const int> clients = cell_clients(ap);
  if (capture != nullptr) {
    capture->atd_s_per_bit = 0.0;
    capture->tcp_c1.clear();
    capture->tcp_cap.clear();
  }
  if (clients.empty()) {
    std::fill(out_value.begin(), out_value.end(), 0.0);
    return;
  }
#if ACORN_NETKERNEL_SIMD
  const bool simd = kernel == BatchKernel::kAuto;
#else
  const bool simd = false;
  (void)kernel;
#endif
  const WlanConfig& config = wlan_->config();
  const bool sinr = config.sinr_interference;
  const std::size_t n_clients = clients.size();
  const std::size_t lo =
      static_cast<std::size_t>(cell_begin_[static_cast<std::size_t>(ap)]);

  BatchScratch& s = scratch();
  s.ctx.resize(n_lanes);
  for (std::size_t l = 0; l < n_lanes; ++l) {
    const CellLane& lane = lanes[l];
    LaneCtx& ctx = s.ctx[l];
    ctx.own = (lane.flip_ap == ap) ? lane.flip_channel
                                   : base[static_cast<std::size_t>(ap)];
    const bool wide = ctx.own.width() == phy::ChannelWidth::k40MHz;
    ctx.table = wide ? table40_.get() : table20_.get();
    ctx.snrs = (wide ? cell_snr40_db_ : cell_snr20_db_).data();
  }
  // Lane arrays are padded to a multiple of the vector width so the
  // 4-wide kernels never read past the end; pad lanes replay lane 0's
  // inputs and their outputs are ignored.
  const std::size_t padded = (n_lanes + 3) & ~std::size_t{3};
  s.snr.resize(padded);
  s.rate.resize(padded);
  s.per.resize(padded);
  s.atd.assign(padded, 0.0);
  s.mac_bps.resize(padded);
  s.hid.resize(padded);
  s.captured.resize(padded);
  s.act_at.resize(padded);
  s.subc.resize(padded);
  s.per_all.resize(n_clients * n_lanes);
  s.memo_snr.resize(n_lanes);
  s.memo_mcs.resize(n_lanes);
  s.memo_per.resize(n_lanes);

  const double fixed_s = airtime_fixed_s(config.timing);
  const double payload_bits = static_cast<double>(payload_bits_);
  const int sub20 = phy::data_subcarriers(phy::ChannelWidth::k20MHz);
  const int sub40 = phy::data_subcarriers(phy::ChannelWidth::k40MHz);

  for (std::size_t i = 0; i < n_clients; ++i) {
    const int c = clients[i];
    for (std::size_t l = 0; l < n_lanes; ++l) {
      s.snr[l] = s.ctx[l].snrs[lo + i];
    }
    if (sinr) {
      // Hidden-interference totals per lane: iterate the hidden
      // interferers in evaluate_cell's exact order, accumulating one
      // captured * activity * rx / subcarriers term per (lane, other).
      std::fill_n(s.hid.data(), padded, 0.0);
      for (int other = 0; other < n_aps_; ++other) {
        if (other == ap || graph_.adjacent(ap, other)) continue;
        const double rx =
            rx_mw_[static_cast<std::size_t>(other) *
                       static_cast<std::size_t>(n_clients_) +
                   static_cast<std::size_t>(c)];
        const net::Channel& base_other =
            base[static_cast<std::size_t>(other)];
        for (std::size_t l = 0; l < n_lanes; ++l) {
          const CellLane& lane = lanes[l];
          const net::Channel& other_ch =
              (lane.flip_ap == other) ? lane.flip_channel : base_other;
          s.captured[l] = overlap_fraction_fast(other_ch, s.ctx[l].own);
          s.act_at[l] =
              lane.activity[static_cast<std::size_t>(other)];
          s.subc[l] = static_cast<double>(
              other_ch.width() == phy::ChannelWidth::k40MHz ? sub40 : sub20);
        }
        for (std::size_t l = n_lanes; l < padded; ++l) {
          s.captured[l] = s.captured[0];
          s.act_at[l] = s.act_at[0];
          s.subc[l] = s.subc[0];
        }
#if ACORN_NETKERNEL_SIMD
        if (simd) {
          for (std::size_t l = 0; l < padded; l += 4) {
            hidden_term_simd(s.captured.data() + l, s.act_at.data() + l, rx,
                             s.subc.data() + l, s.hid.data() + l);
          }
          continue;
        }
#endif
        for (std::size_t l = 0; l < n_lanes; ++l) {
          s.hid[l] += s.captured[l] * s.act_at[l] * rx / s.subc[l];
        }
      }
      for (std::size_t l = 0; l < n_lanes; ++l) {
        // evaluate_cell's SINR penalty, same operand order: the lanes
        // whose hidden total is exactly 0 still run it (lin_to_db(1.0)
        // is exactly 0.0, and evaluate_cell itself always runs it too).
        s.snr[l] -=
            util::lin_to_db((noise_mw_ + s.hid[l]) / noise_mw_);
      }
    }
    // Threshold scan + one coded-PER evaluation per distinct (MCS row,
    // SNR) across the lanes — the same-width lanes of a color sweep all
    // land on the same pair and replay the first lane's PER.
    int n_memo = 0;
    for (std::size_t l = 0; l < n_lanes; ++l) {
      const phy::RateTable::Segment& seg =
          s.ctx[l].table->segment_for_snr(s.snr[l]);
      s.rate[l] = seg.rate_bps;
      double p = -1.0;
      for (int m = 0; m < n_memo; ++m) {
        if (s.memo_mcs[static_cast<std::size_t>(m)] == seg.mcs_index &&
            std::bit_cast<std::uint64_t>(
                s.memo_snr[static_cast<std::size_t>(m)]) ==
                std::bit_cast<std::uint64_t>(s.snr[l])) {
          p = s.memo_per[static_cast<std::size_t>(m)];
          break;
        }
      }
      if (p < 0.0) {
        p = wlan_->link_model().per(phy::mcs(seg.mcs_index), s.snr[l]);
        s.memo_mcs[static_cast<std::size_t>(n_memo)] = seg.mcs_index;
        s.memo_snr[static_cast<std::size_t>(n_memo)] = s.snr[l];
        s.memo_per[static_cast<std::size_t>(n_memo)] = p;
        ++n_memo;
      }
      s.per[l] = p;
      s.per_all[i * n_lanes + l] = p;
    }
    for (std::size_t l = n_lanes; l < padded; ++l) {
      s.rate[l] = s.rate[0];
      s.per[l] = s.per[0];
    }
#if ACORN_NETKERNEL_SIMD
    if (simd) {
      for (std::size_t l = 0; l < padded; l += 4) {
        delay_accumulate_simd(s.rate.data() + l, s.per.data() + l, fixed_s,
                              config.timing.per_cap, payload_bits,
                              s.atd.data() + l);
      }
      continue;
    }
#endif
    delay_accumulate_scalar(config.timing, s.rate.data(), s.per.data(),
                            payload_bits_, s.atd.data(), n_lanes);
  }

  // per-client throughput = share / ATD (anomaly_throughput's division).
  for (std::size_t l = n_lanes; l < padded; ++l) s.atd[l] = s.atd[0];
  for (std::size_t l = 0; l < padded; ++l) {
    s.snr[l] = lanes[l < n_lanes ? l : 0].medium_share;  // reuse as share
  }
#if ACORN_NETKERNEL_SIMD
  if (simd) {
    for (std::size_t l = 0; l < padded; l += 4) {
      divide_simd(s.snr.data() + l, s.atd.data() + l, s.mac_bps.data() + l);
    }
  } else
#endif
  {
    for (std::size_t l = 0; l < n_lanes; ++l) {
      s.mac_bps[l] = s.snr[l] / s.atd[l];
    }
  }

  // Transport accumulation in client order per lane — evaluate_cell's
  // goodput loop plus (when weights are supplied) the oracle's
  // weighting, fused. TCP's pow/sqrt chain stays scalar in both kernels
  // (transcendentals), UDP's pure multiply-add vectorizes.
  std::fill(out_value.begin(), out_value.end(), 0.0);
  const mac::TrafficModel& model = config.traffic;
  const bool weighted = !client_weights.empty();
  const bool udp = traffic == mac::TrafficType::kUdp;
#if ACORN_NETKERNEL_SIMD
  if (simd && udp) {
    // s.hid is free again after the SNR stage; reuse it as the padded
    // per-lane value accumulator, copied into out_value at the end.
    std::fill_n(s.hid.data(), padded, 0.0);
    for (std::size_t i = 0; i < n_clients; ++i) {
      const double w =
          weighted ? client_weights[static_cast<std::size_t>(clients[i])]
                   : 0.0;
      for (std::size_t l = 0; l < padded; l += 4) {
        udp_accumulate_simd(s.mac_bps.data() + l, model.udp_efficiency, w,
                            weighted, s.hid.data() + l);
      }
    }
    for (std::size_t l = 0; l < n_lanes; ++l) out_value[l] = s.hid[l];
  } else
#endif
  {
    for (std::size_t i = 0; i < n_clients; ++i) {
      const double w =
          weighted ? client_weights[static_cast<std::size_t>(clients[i])]
                   : 0.0;
      for (std::size_t l = 0; l < n_lanes; ++l) {
        const double g = mac::transport_goodput_bps(
            model, traffic, s.mac_bps[l], s.per_all[i * n_lanes + l]);
        out_value[l] += weighted ? w * g : g;
      }
    }
  }

  if (capture != nullptr) {
    capture->atd_s_per_bit = s.atd[0];
    if (!udp) {
      capture->tcp_c1.resize(n_clients);
      capture->tcp_cap.resize(n_clients);
      for (std::size_t i = 0; i < n_clients; ++i) {
        const double per = s.per_all[i * n_lanes];
        // The exact first product transport_goodput_bps forms, and the
        // Mathis cap, per client.
        const double window_factor =
            std::pow(1.0 - per, model.tcp_loss_sensitivity);
        capture->tcp_c1[i] = model.tcp_efficiency * window_factor;
        capture->tcp_cap[i] =
            mac::mathis_cap_bps(model, mac::residual_loss(model, per));
      }
    }
  }
}

void NetSnapshot::rescale_cell_shares(
    int ap, std::span<const double> shares, const CellScanCache& cache,
    mac::TrafficType traffic, std::span<const double> client_weights,
    std::span<double> out_value, BatchKernel kernel) const {
  const std::size_t n_lanes = shares.size();
  if (out_value.size() != n_lanes) {
    throw std::invalid_argument("out_value size != lane count");
  }
  const std::span<const int> clients = cell_clients(ap);
  if (clients.empty()) {
    std::fill(out_value.begin(), out_value.end(), 0.0);
    return;
  }
#if ACORN_NETKERNEL_SIMD
  const bool simd = kernel == BatchKernel::kAuto;
#else
  const bool simd = false;
  (void)kernel;
#endif
  const mac::TrafficModel& model = wlan_->config().traffic;
  const bool weighted = !client_weights.empty();
  const bool udp = traffic == mac::TrafficType::kUdp;
  const std::size_t n_clients = clients.size();

  BatchScratch& s = scratch();
  const std::size_t padded = (n_lanes + 3) & ~std::size_t{3};
  s.mac_bps.resize(padded);
  s.hid.assign(padded, 0.0);  // padded value accumulators
  for (std::size_t l = 0; l < n_lanes; ++l) {
    s.mac_bps[l] = shares[l] / cache.atd_s_per_bit;
  }
  for (std::size_t l = n_lanes; l < padded; ++l) s.mac_bps[l] = s.mac_bps[0];

#if ACORN_NETKERNEL_SIMD
  if (simd) {
    for (std::size_t i = 0; i < n_clients; ++i) {
      const double w =
          weighted ? client_weights[static_cast<std::size_t>(clients[i])]
                   : 0.0;
      for (std::size_t l = 0; l < padded; l += 4) {
        if (udp) {
          udp_accumulate_simd(s.mac_bps.data() + l, model.udp_efficiency, w,
                              weighted, s.hid.data() + l);
        } else {
          tcp_rescale_simd(s.mac_bps.data() + l, cache.tcp_c1[i],
                           cache.tcp_cap[i], w, weighted, s.hid.data() + l);
        }
      }
    }
    for (std::size_t l = 0; l < n_lanes; ++l) out_value[l] = s.hid[l];
    return;
  }
#endif
  std::fill(out_value.begin(), out_value.end(), 0.0);
  for (std::size_t i = 0; i < n_clients; ++i) {
    const double w =
        weighted ? client_weights[static_cast<std::size_t>(clients[i])] : 0.0;
    for (std::size_t l = 0; l < n_lanes; ++l) {
      double g;
      if (udp) {
        g = model.udp_efficiency * s.mac_bps[l];
      } else {
        g = std::min(cache.tcp_c1[i] * s.mac_bps[l], cache.tcp_cap[i]);
      }
      out_value[l] += weighted ? w * g : g;
    }
  }
}

}  // namespace acorn::sim
