// A small discrete-event engine used by the dynamic experiments
// (client arrivals/departures, periodic channel re-allocation, mobility
// time-stepping). Deterministic: ties in time are broken by insertion
// order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace acorn::sim {

class EventQueue {
 public:
  using Handler = std::function<void(double now)>;

  /// Schedule `handler` at absolute time `time_s` (>= now).
  void schedule(double time_s, Handler handler);
  /// Schedule `handler` `delay_s` seconds from now.
  void schedule_in(double delay_s, Handler handler);

  /// Process events in time order until the queue is empty or the next
  /// event is after `t_end_s`. Events scheduled by handlers are included.
  void run_until(double t_end_s);

  /// Process every remaining event.
  void run();

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t processed() const { return processed_; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace acorn::sim
