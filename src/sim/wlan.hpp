// Flow-level WLAN evaluator: given a deployment (topology + link budget),
// a user association and a channel assignment, compute what every cell
// and the whole network achieve under saturated downlink traffic.
//
// The pipeline per AP is the paper's measurement chain in reverse:
// client SNR at the assigned width -> auto-rate (MCS + SDM/STBC mode and
// its PER) -> per-client transmission delay -> performance-anomaly cell
// throughput scaled by the contention share M_a -> transport goodput.
#pragma once

#include <vector>

#include "mac/anomaly.hpp"
#include "mac/traffic.hpp"
#include "net/interference.hpp"
#include "phy/rate_control.hpp"

namespace acorn::sim {

struct WlanConfig {
  phy::LinkConfig link;
  mac::MacTiming timing;
  mac::TrafficModel traffic;
  net::InterferenceConfig interference;
  int payload_bytes = 1500;
  phy::GuardInterval gi = phy::GuardInterval::kLong800ns;
  /// Contention model: false = the paper's M = 1/(|con|+1); true = the
  /// overlap-weighted variant (partial spectral overlap costs a partial
  /// contention slot). See the contention-model ablation bench.
  bool weighted_contention = false;
  /// Hidden-interference model: when true, co-channel APs *outside*
  /// carrier-sense range raise the effective noise floor at each client
  /// (SINR instead of SNR), weighted by the interferer's busy fraction.
  /// Captures the paper's §1 point that wider bands both project and
  /// suffer more interference. Off by default (the paper's evaluation
  /// topologies are contention- or isolation-dominated).
  bool sinr_interference = false;
};

/// Everything measured about one AP's cell in one evaluation.
struct ApStats {
  int ap_id = 0;
  int num_clients = 0;            // K_i
  double medium_share = 0.0;      // M_i
  double atd_s_per_bit = 0.0;     // ATD_i
  double mac_throughput_bps = 0.0;
  double goodput_bps = 0.0;       // transport-level cell goodput
  std::vector<int> client_ids;
  std::vector<double> client_delay_s_per_bit;  // d_cl, same order
  std::vector<double> client_goodput_bps;
};

struct Evaluation {
  std::vector<ApStats> per_ap;
  double total_goodput_bps = 0.0;
};

class Wlan {
 public:
  Wlan(net::Topology topology, net::LinkBudget budget, WlanConfig config);

  const net::Topology& topology() const { return topology_; }
  const net::LinkBudget& budget() const { return budget_; }
  net::LinkBudget& budget() { return budget_; }
  const WlanConfig& config() const { return config_; }
  const phy::LinkModel& link_model() const { return link_model_; }

  /// Per-subcarrier SNR of the AP->client link at a width.
  double client_snr_db(int ap, int client, phy::ChannelWidth width) const;

  /// Auto-rate decision (MCS, mode, PER, goodput) for a client at a width.
  phy::RateDecision client_rate(int ap, int client,
                                phy::ChannelWidth width) const;

  /// Per-client transmission delay d_u (s/bit) at a width.
  double client_delay_s_per_bit(int ap, int client,
                                phy::ChannelWidth width) const;

  /// Evaluate one cell in isolation (medium share 1) at a given width;
  /// used for the isolated-throughput bound Y* (paper §4.2, Fig. 14).
  /// Rate selection goes through the shared phy::RateTable; the result
  /// is bit-identical to `isolated_cell_bps_reference`.
  double isolated_cell_bps(int ap, const std::vector<int>& clients,
                           phy::ChannelWidth width,
                           mac::TrafficType traffic =
                               mac::TrafficType::kUdp) const;

  /// The original `best_rate`-per-client isolated path, kept as the
  /// executable specification the RateTable route is property-tested
  /// against (tests/test_sim_wlan.cpp asserts bit-identity).
  double isolated_cell_bps_reference(int ap, const std::vector<int>& clients,
                                     phy::ChannelWidth width,
                                     mac::TrafficType traffic =
                                         mac::TrafficType::kUdp) const;

  /// max over widths of the isolated cell throughput, X_i^isol.
  double isolated_best_bps(int ap, const std::vector<int>& clients,
                           mac::TrafficType traffic =
                               mac::TrafficType::kUdp) const;

  /// Full-network evaluation under an association + channel assignment.
  /// Delegates to a one-shot sim::NetSnapshot (flat-array kernel);
  /// bit-identical to `evaluate_reference`. Callers scoring many
  /// assignments under one association should build the snapshot once
  /// themselves instead.
  Evaluation evaluate(const net::Association& assoc,
                      const net::ChannelAssignment& assignment,
                      mac::TrafficType traffic =
                          mac::TrafficType::kUdp) const;

  /// The original object-at-a-time evaluation path, kept as the
  /// executable specification the flat engine is property-tested against
  /// (tests/test_sim_netkernel.cpp asserts bit-identical Evaluations).
  Evaluation evaluate_reference(const net::Association& assoc,
                                const net::ChannelAssignment& assignment,
                                mac::TrafficType traffic =
                                    mac::TrafficType::kUdp) const;

  /// Clients of an AP under an association.
  std::vector<int> clients_of(const net::Association& assoc, int ap) const;

  /// All per-AP client lists in one O(num_clients) pass (ascending client
  /// ids, exactly what `clients_of` returns per AP). Delta hook for
  /// incremental oracles that group clients once per association instead
  /// of rescanning every client for every cell.
  std::vector<std::vector<int>> clients_by_ap(
      const net::Association& assoc) const;

  /// Evaluate AP `ap`'s cell exactly as `evaluate` would under
  /// (assignment, graph): width and hidden-interference context come from
  /// the assignment, `medium_share` is supplied by the caller (who may
  /// have computed or cached it). Delta hook for incremental oracles that
  /// re-evaluate only the cells a channel flip actually changed; the
  /// result is bit-identical to the corresponding `evaluate` entry.
  ApStats evaluate_cell_in(int ap, const std::vector<int>& clients,
                           double medium_share,
                           const net::InterferenceGraph& graph,
                           const net::ChannelAssignment& assignment,
                           mac::TrafficType traffic =
                               mac::TrafficType::kUdp) const;

  /// Per-subcarrier interference power (mW) a client would see on
  /// `channel` from co-channel APs that its serving AP does NOT contend
  /// with (hidden interferers), each weighted by its busy fraction
  /// (1 - its medium share is idle; we charge its share as activity).
  double hidden_interference_mw(int serving_ap, int client,
                                const net::Channel& channel,
                                const net::InterferenceGraph& graph,
                                const net::ChannelAssignment& assignment)
      const;

 private:
  /// One client's auto-rate outcome, expanded to what the MAC model
  /// consumes: the PHY rate at the configured GI and the packet error
  /// rate. Single source for `evaluate_cell` and `client_delay_s_per_bit`
  /// so the rate decision is computed (and expanded) once.
  struct ClientLink {
    double rate_bps = 0.0;
    double per = 0.0;
  };
  ClientLink client_link(phy::ChannelWidth width, double snr_db) const;

  struct CellContext {
    const net::InterferenceGraph* graph = nullptr;
    const net::ChannelAssignment* assignment = nullptr;
    net::Channel channel = net::Channel::basic(0);
  };
  ApStats evaluate_cell(int ap, const std::vector<int>& clients,
                        phy::ChannelWidth width, double medium_share,
                        mac::TrafficType traffic,
                        const CellContext* context = nullptr) const;

  net::Topology topology_;
  net::LinkBudget budget_;
  WlanConfig config_;
  phy::LinkModel link_model_;
};

}  // namespace acorn::sim
