// Plain-text deployment descriptions, so tools (and users) can configure
// real floor plans without writing C++. Line-oriented format, '#' starts
// a comment:
//
//   ap <x> <y> [tx_dbm]        # one access point
//   client <x> <y>             # one client
//   pathloss exponent <n>      # log-distance exponent (default 3.5)
//   pathloss ref <dB>          # loss at 1 m (default 46.8)
//   pathloss shadowing <dB>    # log-normal sigma (default 0)
//   channels <n>               # 20 MHz channels in the plan (default 12)
//   seed <n>                   # RNG seed for shadowing draws (default 1)
#pragma once

#include <istream>
#include <string>

#include "net/channels.hpp"
#include "net/pathloss.hpp"
#include "sim/wlan.hpp"

namespace acorn::sim {

struct DeploymentSpec {
  net::Topology topology;
  net::PathLossModel pathloss;
  int num_channels = 12;
  std::uint64_t seed = 1;

  /// Materialize the Wlan (draws shadowing with the spec's seed).
  Wlan build(const WlanConfig& config = {}) const;
};

/// Parse a deployment description. Throws std::invalid_argument with a
/// line number on malformed input.
DeploymentSpec parse_deployment(std::istream& in);

/// Convenience: parse from a string.
DeploymentSpec parse_deployment(const std::string& text);

/// Render a spec back into the line format above. Coordinates and
/// pathloss fields are printed with enough digits that
/// parse_deployment(format_deployment(spec)) reproduces every double
/// exactly — generators (dcb::random_drop) emit through this so their
/// scenarios are portable files, not just in-memory objects.
std::string format_deployment(const DeploymentSpec& spec);

}  // namespace acorn::sim
