#include "sim/deployment_file.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace acorn::sim {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("deployment line " + std::to_string(line) +
                              ": " + message);
}

}  // namespace

Wlan DeploymentSpec::build(const WlanConfig& config) const {
  util::Rng rng(seed);
  net::LinkBudget budget(topology, pathloss, rng);
  return Wlan(topology, std::move(budget), config);
}

DeploymentSpec parse_deployment(std::istream& in) {
  DeploymentSpec spec;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank / comment-only line

    if (keyword == "ap") {
      double x = 0.0;
      double y = 0.0;
      if (!(tokens >> x >> y)) fail(line_no, "ap needs <x> <y>");
      double tx = 15.0;
      tokens >> tx;  // optional
      spec.topology.add_ap(net::Point{x, y}, tx);
    } else if (keyword == "client") {
      double x = 0.0;
      double y = 0.0;
      if (!(tokens >> x >> y)) fail(line_no, "client needs <x> <y>");
      spec.topology.add_client(net::Point{x, y});
    } else if (keyword == "pathloss") {
      std::string which;
      double value = 0.0;
      if (!(tokens >> which >> value)) {
        fail(line_no, "pathloss needs <field> <value>");
      }
      if (which == "exponent") {
        spec.pathloss.exponent = value;
      } else if (which == "ref") {
        spec.pathloss.ref_loss_db = value;
      } else if (which == "shadowing") {
        spec.pathloss.shadowing_sigma_db = value;
      } else {
        fail(line_no, "unknown pathloss field '" + which + "'");
      }
    } else if (keyword == "channels") {
      int n = 0;
      if (!(tokens >> n) || n < 1) fail(line_no, "channels needs n >= 1");
      spec.num_channels = n;
    } else if (keyword == "seed") {
      std::uint64_t s = 0;
      if (!(tokens >> s)) fail(line_no, "seed needs an integer");
      spec.seed = s;
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
    // Trailing garbage after the recognized fields is an error.
    std::string extra;
    if (tokens >> extra) fail(line_no, "unexpected token '" + extra + "'");
  }
  if (spec.topology.num_aps() == 0) {
    throw std::invalid_argument("deployment has no APs");
  }
  return spec;
}

DeploymentSpec parse_deployment(const std::string& text) {
  std::istringstream in(text);
  return parse_deployment(in);
}

std::string format_deployment(const DeploymentSpec& spec) {
  std::ostringstream out;
  // %.17g round-trips any finite double through istream extraction.
  const auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  out << "pathloss exponent " << num(spec.pathloss.exponent) << "\n";
  out << "pathloss ref " << num(spec.pathloss.ref_loss_db) << "\n";
  out << "pathloss shadowing " << num(spec.pathloss.shadowing_sigma_db)
      << "\n";
  out << "channels " << spec.num_channels << "\n";
  out << "seed " << spec.seed << "\n";
  for (const net::ApNode& ap : spec.topology.aps()) {
    out << "ap " << num(ap.position.x) << " " << num(ap.position.y) << " "
        << num(ap.tx_dbm) << "\n";
  }
  for (const net::ClientNode& client : spec.topology.clients()) {
    out << "client " << num(client.position.x) << " "
        << num(client.position.y) << "\n";
  }
  return out.str();
}

}  // namespace acorn::sim
