#include "sim/client_fsm.hpp"

#include <stdexcept>

namespace acorn::sim {

const char* to_string(ClientState state) {
  switch (state) {
    case ClientState::kIdle: return "IDLE";
    case ClientState::kScanning: return "SCANNING";
    case ClientState::kAssociating: return "ASSOCIATING";
    case ClientState::kAssociated: return "ASSOCIATED";
  }
  return "?";
}

ClientFsm::ClientFsm(int client_id, ClientFsmConfig config, RssProvider rss,
                     Selector selector)
    : client_id_(client_id),
      config_(config),
      rss_(std::move(rss)),
      selector_(std::move(selector)) {
  if (!rss_ || !selector_) {
    throw std::invalid_argument("ClientFsm needs rss and selector hooks");
  }
}

void ClientFsm::transition(double now, ClientState to) {
  history_.push_back(ClientTransition{now, state_, to, serving_ap_});
  state_ = to;
  history_.back().ap = serving_ap_;
}

void ClientFsm::join(EventQueue& queue) {
  if (state_ != ClientState::kIdle) {
    throw std::logic_error("join() while not idle");
  }
  begin_scan(queue, queue.now());
}

void ClientFsm::leave(EventQueue& queue) {
  ++generation_;  // orphan any in-flight timer
  serving_ap_ = -1;
  if (state_ != ClientState::kIdle) transition(queue.now(), ClientState::kIdle);
}

void ClientFsm::begin_scan(EventQueue& queue, double now) {
  ++generation_;
  serving_ap_ = -1;
  transition(now, ClientState::kScanning);
  const std::uint64_t gen = generation_;
  queue.schedule(now + config_.scan_duration_s, [this, &queue, gen](double t) {
    if (gen != generation_) return;
    finish_scan(queue, t);
  });
}

void ClientFsm::finish_scan(EventQueue& queue, double now) {
  const std::optional<int> target = selector_();
  if (!target) {
    // Nothing reachable: back off for one monitor interval and rescan.
    const std::uint64_t gen = generation_;
    transition(now, ClientState::kIdle);
    queue.schedule(now + config_.monitor_interval_s,
                   [this, &queue, gen](double t) {
                     if (gen != generation_) return;
                     begin_scan(queue, t);
                   });
    return;
  }
  transition(now, ClientState::kAssociating);
  const std::uint64_t gen = generation_;
  const int ap = *target;
  queue.schedule(now + config_.associate_duration_s,
                 [this, &queue, gen, ap](double t) {
                   if (gen != generation_) return;
                   finish_association(queue, t, ap);
                 });
}

void ClientFsm::finish_association(EventQueue& queue, double now, int ap) {
  serving_ap_ = ap;
  transition(now, ClientState::kAssociated);
  const std::uint64_t gen = generation_;
  queue.schedule(now + config_.monitor_interval_s,
                 [this, &queue, gen](double t) {
                   if (gen != generation_) return;
                   monitor(queue, t);
                 });
}

void ClientFsm::monitor(EventQueue& queue, double now) {
  if (state_ != ClientState::kAssociated) return;
  const double serving = rss_(serving_ap_);
  // Find the strongest alternative the provider knows about by probing
  // increasing AP ids until the provider throws (out of range) — the
  // selector owns full topology knowledge, so we only need the serving
  // link here plus the roam decision via the selector.
  bool roam = serving < config_.min_serving_rss_dbm;
  if (!roam) {
    const std::optional<int> better = selector_();
    if (better && *better != serving_ap_ &&
        rss_(*better) >= serving + config_.roam_hysteresis_db) {
      roam = true;
    }
  }
  if (roam) {
    begin_scan(queue, now);
    return;
  }
  const std::uint64_t gen = generation_;
  queue.schedule(now + config_.monitor_interval_s,
                 [this, &queue, gen](double t) {
                   if (gen != generation_) return;
                   monitor(queue, t);
                 });
}

}  // namespace acorn::sim
