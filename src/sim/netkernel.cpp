#include "sim/netkernel.hpp"

#include <stdexcept>
#include <utility>

#include "phy/mcs.hpp"
#include "phy/noise.hpp"
#include "util/units.hpp"

namespace acorn::sim {

NetSnapshot::NetSnapshot(const Wlan& wlan, net::Association assoc)
    : wlan_(&wlan),
      assoc_(std::move(assoc)),
      // The graph constructor validates assoc.size() == client count with
      // the same message Wlan::evaluate used to throw.
      graph_(wlan.topology(), wlan.budget(), assoc_,
             wlan.config().interference) {
  const net::Topology& topo = wlan.topology();
  const WlanConfig& config = wlan.config();
  n_aps_ = topo.num_aps();
  n_clients_ = topo.num_clients();
  noise_mw_ = util::dbm_to_mw(
      phy::noise_per_subcarrier_dbm(config.link.noise_figure_db));
  payload_bits_ = config.payload_bytes * 8;

  // CSR layout of clients_by_ap: count, prefix-sum, fill. Clients land
  // ascending within each cell because the fill pass walks them in order.
  cell_begin_.assign(static_cast<std::size_t>(n_aps_) + 1, 0);
  for (int c = 0; c < n_clients_; ++c) {
    const int ap = assoc_[static_cast<std::size_t>(c)];
    if (ap >= 0 && ap < n_aps_) ++cell_begin_[static_cast<std::size_t>(ap) + 1];
  }
  for (int ap = 0; ap < n_aps_; ++ap) {
    cell_begin_[static_cast<std::size_t>(ap) + 1] +=
        cell_begin_[static_cast<std::size_t>(ap)];
  }
  const std::size_t n_assoc =
      static_cast<std::size_t>(cell_begin_[static_cast<std::size_t>(n_aps_)]);
  cell_clients_.resize(n_assoc);
  cell_snr20_db_.resize(n_assoc);
  cell_snr40_db_.resize(n_assoc);
  std::vector<int> cursor(cell_begin_.begin(), cell_begin_.end() - 1);
  for (int c = 0; c < n_clients_; ++c) {
    const int ap = assoc_[static_cast<std::size_t>(c)];
    if (ap < 0 || ap >= n_aps_) continue;
    const auto slot =
        static_cast<std::size_t>(cursor[static_cast<std::size_t>(ap)]++);
    cell_clients_[slot] = c;
    cell_snr20_db_[slot] =
        wlan.client_snr_db(ap, c, phy::ChannelWidth::k20MHz);
    cell_snr40_db_[slot] =
        wlan.client_snr_db(ap, c, phy::ChannelWidth::k40MHz);
  }

  // Full AP -> client received-power matrix in mW: the hidden-interference
  // kernel reads arbitrary (interferer, client) pairs.
  rx_mw_.resize(static_cast<std::size_t>(n_aps_) *
                static_cast<std::size_t>(n_clients_));
  const net::LinkBudget& budget = wlan.budget();
  for (int ap = 0; ap < n_aps_; ++ap) {
    for (int c = 0; c < n_clients_; ++c) {
      rx_mw_[static_cast<std::size_t>(ap) *
                 static_cast<std::size_t>(n_clients_) +
             static_cast<std::size_t>(c)] =
          util::dbm_to_mw(budget.rx_at_client_dbm(topo, ap, c));
    }
  }

  table20_ = phy::RateTable::shared(wlan.link_model(),
                                    phy::ChannelWidth::k20MHz, config.gi);
  table40_ = phy::RateTable::shared(wlan.link_model(),
                                    phy::ChannelWidth::k40MHz, config.gi);
}

void NetSnapshot::unweighted_shares(const net::ChannelAssignment& assignment,
                                    std::vector<double>& out) const {
  out.resize(static_cast<std::size_t>(n_aps_));
  for (int ap = 0; ap < n_aps_; ++ap) {
    const net::Channel& own = assignment[static_cast<std::size_t>(ap)];
    int count = 0;
    for (int b = 0; b < n_aps_; ++b) {
      if (b != ap && graph_.adjacent(ap, b) &&
          own.conflicts(assignment[static_cast<std::size_t>(b)])) {
        ++count;
      }
    }
    out[static_cast<std::size_t>(ap)] =
        1.0 / (static_cast<double>(count) + 1.0);
  }
}

double NetSnapshot::weighted_share(const net::ChannelAssignment& assignment,
                                   int ap) const {
  double load = 1.0;  // this AP's own demand
  const net::Channel& own = assignment[static_cast<std::size_t>(ap)];
  for (int b = 0; b < n_aps_; ++b) {
    if (b == ap || !graph_.adjacent(ap, b)) continue;
    load += own.overlap_fraction(assignment[static_cast<std::size_t>(b)]);
  }
  return 1.0 / load;
}

double NetSnapshot::hidden_mw(int serving_ap, int client,
                              const net::Channel& channel,
                              const net::ChannelAssignment& assignment,
                              std::span<const double> activity) const {
  double total_mw = 0.0;
  for (int other = 0; other < n_aps_; ++other) {
    if (other == serving_ap) continue;
    // Contending APs defer to each other (already charged via M_a);
    // only hidden co-channel APs add concurrent interference.
    if (graph_.adjacent(serving_ap, other)) continue;
    const net::Channel& other_ch =
        assignment[static_cast<std::size_t>(other)];
    const double captured = other_ch.overlap_fraction(channel);
    if (captured <= 0.0) continue;
    const double rx_mw =
        rx_mw_[static_cast<std::size_t>(other) *
                   static_cast<std::size_t>(n_clients_) +
               static_cast<std::size_t>(client)];
    // Activity factor: the interferer transmits for its medium share.
    // Spread over the interferer's data subcarriers; captured fraction
    // falls inside this channel.
    total_mw += captured * activity[static_cast<std::size_t>(other)] *
                rx_mw / phy::data_subcarriers(other_ch.width());
  }
  return total_mw;
}

ApStats NetSnapshot::evaluate_cell(int ap, double medium_share,
                                   const net::ChannelAssignment& assignment,
                                   std::span<const double> activity,
                                   mac::TrafficType traffic) const {
  const WlanConfig& config = wlan_->config();
  const net::Channel& own = assignment[static_cast<std::size_t>(ap)];
  const phy::ChannelWidth width = own.width();
  const bool wide = width == phy::ChannelWidth::k40MHz;
  const phy::RateTable& table = wide ? *table40_ : *table20_;
  const std::vector<double>& snrs = wide ? cell_snr40_db_ : cell_snr20_db_;

  const std::span<const int> clients = cell_clients(ap);
  ApStats stats;
  stats.ap_id = ap;
  stats.num_clients = static_cast<int>(clients.size());
  stats.medium_share = medium_share;
  if (clients.empty()) return stats;

  const std::size_t lo =
      static_cast<std::size_t>(cell_begin_[static_cast<std::size_t>(ap)]);
  std::vector<mac::CellClient> cell;
  cell.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int c = clients[i];
    double snr_db = snrs[lo + i];
    if (config.sinr_interference) {
      // Raise the per-subcarrier noise floor by the hidden interference.
      const double interference_mw =
          hidden_mw(ap, c, own, assignment, activity);
      snr_db -= util::lin_to_db((noise_mw_ + interference_mw) / noise_mw_);
    }
    // Threshold scan for the argmax row, then ONE PER evaluation — the
    // flat-engine replacement for the 16-row best_rate sweep.
    const phy::RateTable::Segment& seg = table.segment_for_snr(snr_db);
    const double per = wlan_->link_model().per(phy::mcs(seg.mcs_index),
                                               snr_db);
    cell.push_back(mac::CellClient{c, seg.rate_bps, per});
  }
  const mac::CellThroughput mac_result = mac::anomaly_throughput(
      config.timing, cell, medium_share, payload_bits_);

  stats.atd_s_per_bit = mac_result.atd_s_per_bit;
  stats.mac_throughput_bps = mac_result.cell_bps;
  stats.client_ids.assign(clients.begin(), clients.end());
  stats.client_delay_s_per_bit = mac_result.client_delay_s_per_bit;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const double goodput = mac::transport_goodput_bps(
        config.traffic, traffic, mac_result.per_client_bps, cell[i].per);
    stats.client_goodput_bps.push_back(goodput);
    stats.goodput_bps += goodput;
  }
  return stats;
}

Evaluation NetSnapshot::evaluate(const net::ChannelAssignment& assignment,
                                 mac::TrafficType traffic) const {
  if (static_cast<int>(assignment.size()) != n_aps_) {
    throw std::invalid_argument("assignment size != AP count");
  }
  std::vector<double> activity;
  unweighted_shares(assignment, activity);
  Evaluation eval;
  eval.per_ap.reserve(static_cast<std::size_t>(n_aps_));
  for (int ap = 0; ap < n_aps_; ++ap) {
    const double share = wlan_->config().weighted_contention
                             ? weighted_share(assignment, ap)
                             : activity[static_cast<std::size_t>(ap)];
    ApStats stats = evaluate_cell(ap, share, assignment, activity, traffic);
    eval.total_goodput_bps += stats.goodput_bps;
    eval.per_ap.push_back(std::move(stats));
  }
  return eval;
}

}  // namespace acorn::sim
