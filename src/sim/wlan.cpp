#include "sim/wlan.hpp"

#include <algorithm>
#include <stdexcept>

#include "phy/noise.hpp"
#include "phy/rate_table.hpp"
#include "sim/netkernel.hpp"
#include "util/units.hpp"

namespace acorn::sim {

namespace {
phy::LinkConfig patched_link(const WlanConfig& cfg) {
  phy::LinkConfig lc = cfg.link;
  lc.payload_bytes = cfg.payload_bytes;
  return lc;
}
}  // namespace

Wlan::Wlan(net::Topology topology, net::LinkBudget budget, WlanConfig config)
    : topology_(std::move(topology)),
      budget_(std::move(budget)),
      config_(config),
      link_model_(patched_link(config)) {}

double Wlan::client_snr_db(int ap, int client, phy::ChannelWidth width) const {
  return link_model_.snr_db(topology_.ap(ap).tx_dbm,
                            budget_.ap_client_loss_db(ap, client), width);
}

phy::RateDecision Wlan::client_rate(int ap, int client,
                                    phy::ChannelWidth width) const {
  return phy::best_rate(link_model_, width, client_snr_db(ap, client, width),
                        config_.gi);
}

Wlan::ClientLink Wlan::client_link(phy::ChannelWidth width,
                                   double snr_db) const {
  const phy::RateDecision rate =
      phy::best_rate(link_model_, width, snr_db, config_.gi);
  const phy::McsEntry& entry = phy::mcs(rate.mcs_index);
  return ClientLink{entry.rate_bps(width, config_.gi), rate.per};
}

double Wlan::client_delay_s_per_bit(int ap, int client,
                                    phy::ChannelWidth width) const {
  const ClientLink link =
      client_link(width, client_snr_db(ap, client, width));
  return mac::per_bit_delay_s(config_.timing, link.rate_bps,
                              config_.payload_bytes * 8, link.per);
}

std::vector<int> Wlan::clients_of(const net::Association& assoc, int ap) const {
  std::vector<int> out;
  for (int c = 0; c < topology_.num_clients(); ++c) {
    if (assoc[static_cast<std::size_t>(c)] == ap) out.push_back(c);
  }
  return out;
}

std::vector<std::vector<int>> Wlan::clients_by_ap(
    const net::Association& assoc) const {
  std::vector<std::vector<int>> out(
      static_cast<std::size_t>(topology_.num_aps()));
  for (int c = 0; c < topology_.num_clients(); ++c) {
    const int ap = assoc[static_cast<std::size_t>(c)];
    if (ap >= 0 && ap < topology_.num_aps()) {
      out[static_cast<std::size_t>(ap)].push_back(c);
    }
  }
  return out;
}

double Wlan::hidden_interference_mw(
    int serving_ap, int client, const net::Channel& channel,
    const net::InterferenceGraph& graph,
    const net::ChannelAssignment& assignment) const {
  double total_mw = 0.0;
  for (int other = 0; other < topology_.num_aps(); ++other) {
    if (other == serving_ap) continue;
    // Contending APs defer to each other (already charged via M_a);
    // only hidden co-channel APs add concurrent interference.
    if (graph.adjacent(serving_ap, other)) continue;
    const net::Channel& other_ch =
        assignment[static_cast<std::size_t>(other)];
    const double captured = other_ch.overlap_fraction(channel);
    if (captured <= 0.0) continue;
    const double rx_mw = util::dbm_to_mw(
        budget_.rx_at_client_dbm(topology_, other, client));
    // Activity factor: the interferer transmits for its medium share.
    const double activity =
        net::medium_access_share(graph, assignment, other);
    // Spread over the interferer's data subcarriers; captured fraction
    // falls inside this channel.
    total_mw += captured * activity * rx_mw /
                phy::data_subcarriers(other_ch.width());
  }
  return total_mw;
}

ApStats Wlan::evaluate_cell(int ap, const std::vector<int>& clients,
                            phy::ChannelWidth width, double medium_share,
                            mac::TrafficType traffic,
                            const CellContext* context) const {
  ApStats stats;
  stats.ap_id = ap;
  stats.num_clients = static_cast<int>(clients.size());
  stats.medium_share = medium_share;
  if (clients.empty()) return stats;

  std::vector<mac::CellClient> cell;
  cell.reserve(clients.size());
  for (int c : clients) {
    double snr_db = client_snr_db(ap, c, width);
    if (config_.sinr_interference && context != nullptr) {
      // Raise the per-subcarrier noise floor by the hidden interference.
      const double noise_mw = util::dbm_to_mw(
          phy::noise_per_subcarrier_dbm(config_.link.noise_figure_db));
      const double interference_mw = hidden_interference_mw(
          ap, c, context->channel, *context->graph, *context->assignment);
      snr_db -= util::lin_to_db((noise_mw + interference_mw) / noise_mw);
    }
    const ClientLink link = client_link(width, snr_db);
    cell.push_back(mac::CellClient{c, link.rate_bps, link.per});
  }
  const mac::CellThroughput mac_result = mac::anomaly_throughput(
      config_.timing, cell, medium_share, config_.payload_bytes * 8);

  stats.atd_s_per_bit = mac_result.atd_s_per_bit;
  stats.mac_throughput_bps = mac_result.cell_bps;
  stats.client_ids = clients;
  stats.client_delay_s_per_bit = mac_result.client_delay_s_per_bit;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const double goodput = mac::transport_goodput_bps(
        config_.traffic, traffic, mac_result.per_client_bps, cell[i].per);
    stats.client_goodput_bps.push_back(goodput);
    stats.goodput_bps += goodput;
  }
  return stats;
}

double Wlan::isolated_cell_bps(int ap, const std::vector<int>& clients,
                               phy::ChannelWidth width,
                               mac::TrafficType traffic) const {
  if (clients.empty()) return 0.0;
  // The isolated bound is evaluated once per (AP, width) for every
  // candidate association move, so rate selection goes through the
  // process-wide RateTable (threshold scan + one PER evaluation) instead
  // of re-running the 16-row `best_rate` sweep per client.
  const std::shared_ptr<const phy::RateTable> table =
      phy::RateTable::shared(link_model_, width, config_.gi);
  std::vector<mac::CellClient> cell;
  cell.reserve(clients.size());
  for (int c : clients) {
    const double snr_db = client_snr_db(ap, c, width);
    const phy::RateTable::Segment& seg = table->segment_for_snr(snr_db);
    const double per = link_model_.per(phy::mcs(seg.mcs_index), snr_db);
    cell.push_back(mac::CellClient{c, seg.rate_bps, per});
  }
  const mac::CellThroughput mac_result = mac::anomaly_throughput(
      config_.timing, cell, 1.0, config_.payload_bytes * 8);
  double total = 0.0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    total += mac::transport_goodput_bps(config_.traffic, traffic,
                                        mac_result.per_client_bps,
                                        cell[i].per);
  }
  return total;
}

double Wlan::isolated_cell_bps_reference(int ap,
                                         const std::vector<int>& clients,
                                         phy::ChannelWidth width,
                                         mac::TrafficType traffic) const {
  return evaluate_cell(ap, clients, width, 1.0, traffic).goodput_bps;
}

double Wlan::isolated_best_bps(int ap, const std::vector<int>& clients,
                               mac::TrafficType traffic) const {
  return std::max(
      isolated_cell_bps(ap, clients, phy::ChannelWidth::k20MHz, traffic),
      isolated_cell_bps(ap, clients, phy::ChannelWidth::k40MHz, traffic));
}

ApStats Wlan::evaluate_cell_in(int ap, const std::vector<int>& clients,
                               double medium_share,
                               const net::InterferenceGraph& graph,
                               const net::ChannelAssignment& assignment,
                               mac::TrafficType traffic) const {
  CellContext context;
  context.graph = &graph;
  context.assignment = &assignment;
  context.channel = assignment[static_cast<std::size_t>(ap)];
  return evaluate_cell(ap, clients,
                       assignment[static_cast<std::size_t>(ap)].width(),
                       medium_share, traffic, &context);
}

Evaluation Wlan::evaluate(const net::Association& assoc,
                          const net::ChannelAssignment& assignment,
                          mac::TrafficType traffic) const {
  // One-shot snapshot build + flat evaluation. The snapshot constructor
  // and NetSnapshot::evaluate throw the same invalid_argument messages
  // (in the same order) as evaluate_reference on malformed inputs.
  return NetSnapshot(*this, assoc).evaluate(assignment, traffic);
}

Evaluation Wlan::evaluate_reference(const net::Association& assoc,
                                    const net::ChannelAssignment& assignment,
                                    mac::TrafficType traffic) const {
  if (static_cast<int>(assoc.size()) != topology_.num_clients()) {
    throw std::invalid_argument("association size != client count");
  }
  if (static_cast<int>(assignment.size()) != topology_.num_aps()) {
    throw std::invalid_argument("assignment size != AP count");
  }
  const net::InterferenceGraph graph(topology_, budget_, assoc,
                                     config_.interference);
  const std::vector<std::vector<int>> clients = clients_by_ap(assoc);
  Evaluation eval;
  eval.per_ap.reserve(static_cast<std::size_t>(topology_.num_aps()));
  for (int ap = 0; ap < topology_.num_aps(); ++ap) {
    const double share =
        config_.weighted_contention
            ? net::medium_access_share_weighted(graph, assignment, ap)
            : net::medium_access_share(graph, assignment, ap);
    const ApStats stats = evaluate_cell_in(
        ap, clients[static_cast<std::size_t>(ap)], share, graph, assignment,
        traffic);
    eval.total_goodput_bps += stats.goodput_bps;
    eval.per_ap.push_back(stats);
  }
  return eval;
}

}  // namespace acorn::sim
