// Scripted deployments with known link classes. The paper's evaluation
// uses fixed topologies whose links are characterized by quality (good /
// marginal / poor); this builder lets callers state exactly that, with
// every pairwise loss pinned, so experiments are reproducible and the
// geometry is irrelevant.
#pragma once

#include <vector>

#include "sim/wlan.hpp"

namespace acorn::sim {

/// Path losses that land a 15 dBm AP in a given link class under the
/// default LinkConfig (NF 5 dB): per-subcarrier snr20 ~= 111.9 - loss.
inline constexpr double kGoodLinkLoss = 80.0;       // snr20 ~ 32 dB
inline constexpr double kMediumLinkLoss = 95.0;     // snr20 ~ 17 dB
inline constexpr double kMarginalLinkLoss = 105.0;  // snr20 ~ 7 dB
/// CB is mildly harmful: 20 MHz beats the bond by ~1.5x.
inline constexpr double kWeakLinkLoss = 107.8;
/// CB is badly harmful: 20 MHz beats the bond by ~3-6x, link still alive.
inline constexpr double kPoorLinkLoss = 108.0;
/// Far enough to be out of carrier-sense and association range.
inline constexpr double kIsolatedLoss = 140.0;

/// Per-AP list of client path losses.
struct CellSpec {
  std::vector<double> client_losses_db;
};

/// Builds a Wlan in which client i of cell a sees its own AP at the
/// configured loss and every other AP at `cross_loss_db` (default:
/// isolated); AP-AP losses are uniformly `ap_ap_loss_db`.
struct ScenarioBuilder {
  std::vector<CellSpec> cells;
  double ap_ap_loss_db = kIsolatedLoss;
  /// Loss from a client to every AP other than its own.
  double cross_loss_db = kIsolatedLoss;
  WlanConfig config;

  Wlan build() const;

  /// Association putting every client on its home AP.
  net::Association intended_association() const;
};

}  // namespace acorn::sim
