#include "sim/mobility.hpp"

#include <stdexcept>

namespace acorn::sim {

Trajectory::Trajectory(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  if (waypoints_.size() < 2) {
    throw std::invalid_argument("trajectory needs >= 2 waypoints");
  }
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (waypoints_[i].time_s <= waypoints_[i - 1].time_s) {
      throw std::invalid_argument("waypoint times must strictly increase");
    }
  }
}

net::Point Trajectory::position_at(double time_s) const {
  if (time_s <= waypoints_.front().time_s) return waypoints_.front().position;
  if (time_s >= waypoints_.back().time_s) return waypoints_.back().position;
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (time_s <= waypoints_[i].time_s) {
      const Waypoint& a = waypoints_[i - 1];
      const Waypoint& b = waypoints_[i];
      const double f = (time_s - a.time_s) / (b.time_s - a.time_s);
      return net::Point{a.position.x + f * (b.position.x - a.position.x),
                        a.position.y + f * (b.position.y - a.position.y)};
    }
  }
  return waypoints_.back().position;  // unreachable
}

Trajectory Trajectory::line(net::Point from, net::Point to, double start_s,
                            double dur_s) {
  if (dur_s <= 0.0) throw std::invalid_argument("duration must be positive");
  return Trajectory({Waypoint{start_s, from}, Waypoint{start_s + dur_s, to}});
}

}  // namespace acorn::sim
