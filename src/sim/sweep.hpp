// Deterministic parallel scenario-sweep driver for the network layer —
// the counterpart of baseband/engine.hpp's packet driver one level up:
// instead of packets through a PHY chain, whole scenarios (random
// topology + configuration search, a table-3 trial, a fig-10 comparison
// point) through an evaluation function.
//
// The determinism contract that makes `num_threads` a pure performance
// knob:
//  * scenario `i` always computes with `Rng::derive_stream(seed, i)` — a
//    pure function of (seed, i), independent of which worker runs it or
//    in what order;
//  * workers pull indices from a shared atomic counter and write only
//    their own preallocated result slot;
//  * the results come back in index order (the ordered reduction), so
//    any fold over them is bit-identical for any thread count, including
//    the serial path.
// tests/test_sim_sweep.cpp asserts bit-identical output at 1 vs 2 vs 5
// threads on full evaluate/allocate scenarios.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace acorn::sim {

/// Map the user-facing thread-count knob (0 = one per hardware thread)
/// to a concrete worker count. Same semantics as the baseband driver.
inline int resolve_sweep_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

struct SweepOptions {
  std::uint64_t seed = 0;
  /// 0 = one worker per hardware thread; 1 = run on the calling thread.
  int num_threads = 1;
};

/// Run `body(rng, i)` for every scenario index i in [0, num_scenarios)
/// and return the results in index order. `body` receives a freshly
/// derived `util::Rng` stream for its index and must not touch shared
/// mutable state (it may read shared immutable state such as a Wlan or a
/// NetSnapshot). The result type must be default-constructible and
/// movable. The first exception thrown by any scenario stops the sweep
/// and is rethrown on the calling thread.
template <typename Body>
auto sweep_scenarios(std::size_t num_scenarios, const SweepOptions& options,
                     Body&& body)
    -> std::vector<std::invoke_result_t<Body&, util::Rng&, std::size_t>> {
  using Result = std::invoke_result_t<Body&, util::Rng&, std::size_t>;
  static_assert(std::is_default_constructible_v<Result>,
                "sweep result slots are preallocated");
  std::vector<Result> results(num_scenarios);

  const auto run_one = [&](std::size_t i) {
    util::Rng rng = util::Rng::derive_stream(options.seed, i);
    results[i] = body(rng, i);
  };

  const int threads = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolve_sweep_threads(options.num_threads)),
      std::max<std::size_t>(num_scenarios, 1)));
  if (threads <= 1) {
    for (std::size_t i = 0; i < num_scenarios; ++i) run_one(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  const auto worker = [&]() {
    try {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= num_scenarios) break;
        run_one(i);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace acorn::sim
