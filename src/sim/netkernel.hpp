// Flat-array network evaluation kernel.
//
// `Wlan::evaluate_reference` walks objects for every cell it scores: each
// client re-derives its SNR from Topology/LinkBudget lookups, re-runs the
// full 16-row `best_rate` erfc/pow sweep, and every hidden-interference
// term re-converts dBm to mW and re-counts contenders with allocating
// `neighbors()` calls. All of that depends only on (topology, budget,
// association) — invariant across the thousands of candidate assignments
// an allocator run or a scenario sweep scores.
//
// NetSnapshot hoists it: built once per (wlan, association), it stores
//   * the interference graph and flat per-AP client lists,
//   * a row-major AP -> client received-power matrix in mW,
//   * each associated client's per-subcarrier base SNR at both widths,
//   * the per-(width, GI) MCS threshold tables (phy::RateTable),
// so `evaluate` / `evaluate_cell` become contiguous array walks whose per
// -client inner loop is a threshold scan plus ONE coded-PER evaluation.
// Results are bit-identical to `Wlan::evaluate_reference` (randomized
// property test in tests/test_sim_netkernel.cpp): every floating-point
// expression is evaluated with the same operands in the same order, only
// hoisted out of the loops.
#pragma once

#include <span>
#include <vector>

#include "phy/rate_table.hpp"
#include "sim/wlan.hpp"

namespace acorn::sim {

/// Kernel selection for the batched candidate evaluators: kAuto picks
/// the vector-extension SIMD kernel where the build enables it (with a
/// target_clones avx2 clone on x86-64 glibc, exactly like the Viterbi
/// trellis kernel), kScalar forces the bit-identical scalar fallback.
/// Both produce the same doubles; the knob exists so tests and benches
/// can pin them against each other on any host.
enum class BatchKernel { kAuto, kScalar };

/// One lane of a batched cell evaluation: the cell is scored under the
/// base assignment with AP `flip_ap` moved to `flip_channel` (flip_ap <
/// 0 scores the base assignment itself). `medium_share` is the cell's
/// contention share under that flip and `activity` the unweighted
/// shares of all APs under that flip — both supplied by the caller,
/// which computes them incrementally from the base.
struct CellLane {
  double medium_share = 0.0;
  const double* activity = nullptr;  // n_aps unweighted shares
  int flip_ap = -1;
  net::Channel flip_channel = net::Channel::basic(0);
};

/// Share-independent per-client products of one cell evaluation. A
/// single-AP flip that only perturbs a neighbor cell's medium share
/// leaves that cell's per-client rates, PERs and delays bit-identical,
/// so the batched oracle caches these once per base assignment and
/// rescales: per-client throughput = share / atd, then the transport
/// factors below reproduce transport_goodput_bps exactly.
struct CellScanCache {
  double atd_s_per_bit = 0.0;
  /// tcp_efficiency * (1-per)^sensitivity per client — the exact first
  /// product transport_goodput_bps forms on the TCP path.
  std::vector<double> tcp_c1;
  /// Mathis cap per client (+inf when the residual loss is exactly 0).
  std::vector<double> tcp_cap;
};

/// Immutable link-state snapshot for one (wlan, association) pair. The
/// wlan must outlive the snapshot. Thread-safe: all methods are const and
/// touch no mutable state, so one snapshot may serve many worker threads
/// (the allocator's candidate scan, the sweep driver).
class NetSnapshot {
 public:
  NetSnapshot(const Wlan& wlan, net::Association assoc);

  const Wlan& wlan() const { return *wlan_; }
  const net::Association& association() const { return assoc_; }
  const net::InterferenceGraph& graph() const { return graph_; }
  int num_aps() const { return n_aps_; }
  /// Clients associated to `ap` (ascending ids, same as clients_by_ap).
  std::span<const int> cell_clients(int ap) const {
    const auto lo = static_cast<std::size_t>(cell_begin_[
        static_cast<std::size_t>(ap)]);
    const auto hi = static_cast<std::size_t>(cell_begin_[
        static_cast<std::size_t>(ap) + 1]);
    return std::span<const int>(cell_clients_).subspan(lo, hi - lo);
  }

  /// The paper's unweighted medium-access share M_a = 1/(|con_a|+1) for
  /// every AP under `assignment`, written into `out` (resized to the AP
  /// count). Bit-identical to net::medium_access_share per AP, without
  /// the allocating neighbors() walk. These are also the activity factors
  /// of the hidden-interference model.
  void unweighted_shares(const net::ChannelAssignment& assignment,
                         std::vector<double>& out) const;

  /// Overlap-weighted share of one AP; bit-identical to
  /// net::medium_access_share_weighted.
  double weighted_share(const net::ChannelAssignment& assignment,
                        int ap) const;

  /// Evaluate one cell exactly as `Wlan::evaluate_reference` would under
  /// (assignment, graph): `medium_share` is the cell's own share,
  /// `activity` the unweighted shares of all APs (used by the
  /// hidden-interference term when `sinr_interference` is on).
  ApStats evaluate_cell(int ap, double medium_share,
                        const net::ChannelAssignment& assignment,
                        std::span<const double> activity,
                        mac::TrafficType traffic =
                            mac::TrafficType::kUdp) const;

  /// Full-network evaluation; bit-identical to
  /// wlan.evaluate_reference(association, assignment, traffic).
  Evaluation evaluate(const net::ChannelAssignment& assignment,
                      mac::TrafficType traffic =
                          mac::TrafficType::kUdp) const;

  /// Batched cell evaluation across candidate lanes. For every lane l,
  /// out_value[l] is the oracle-level value of cell `ap` under (base
  /// with lane l's flip applied): the cell's transport goodput summed in
  /// client order, or the client_weights-weighted sum when weights are
  /// supplied — bit-identical to evaluate_cell(...) followed by the
  /// CachedOracle weighting loop. Vectorized across lanes (hidden-
  /// interference accumulation, MCS threshold scan, delay/ATD and
  /// transport arithmetic); the per-lane transcendental calls (log10,
  /// the coded-PER chain) run through the exact scalar routines the
  /// one-at-a-time path uses, with identical inputs, so SIMD and scalar
  /// kernels agree to the bit. When `capture` is non-null (single-lane
  /// base evaluations) the share-independent per-client products are
  /// stored for later rescale_cell_shares calls.
  void evaluate_cells_batch(int ap, const net::ChannelAssignment& base,
                            std::span<const CellLane> lanes,
                            mac::TrafficType traffic,
                            std::span<const double> client_weights,
                            std::span<double> out_value,
                            CellScanCache* capture = nullptr,
                            BatchKernel kernel = BatchKernel::kAuto) const;

  /// Share-only batched re-evaluation of cell `ap`: for every lane l,
  /// out_value[l] is the oracle-level cell value at medium share
  /// shares[l] with the per-client rate/PER pipeline replayed from
  /// `cache` (valid whenever the flip leaves the cell's channel, SNRs
  /// and hidden-interference inputs untouched). Bit-identical to a full
  /// evaluation at that share.
  void rescale_cell_shares(int ap, std::span<const double> shares,
                           const CellScanCache& cache,
                           mac::TrafficType traffic,
                           std::span<const double> client_weights,
                           std::span<double> out_value,
                           BatchKernel kernel = BatchKernel::kAuto) const;

  /// True when the SIMD batch kernel is compiled in (kAuto differs from
  /// kScalar in code path, never in results).
  static bool batch_simd_enabled();

 private:
  /// Per-subcarrier hidden-interference power (mW) at `client` on
  /// `channel`; bit-identical to Wlan::hidden_interference_mw with the
  /// per-interferer activity shares supplied instead of recomputed.
  double hidden_mw(int serving_ap, int client, const net::Channel& channel,
                   const net::ChannelAssignment& assignment,
                   std::span<const double> activity) const;

  const Wlan* wlan_;
  net::Association assoc_;
  net::InterferenceGraph graph_;
  int n_aps_ = 0;
  int n_clients_ = 0;
  double noise_mw_ = 0.0;  // per-subcarrier noise floor, mW
  int payload_bits_ = 0;

  // Flat per-AP client lists: cell_clients_[cell_begin_[ap] ..
  // cell_begin_[ap+1]) are AP `ap`'s clients, ascending.
  std::vector<int> cell_begin_;
  std::vector<int> cell_clients_;
  // Parallel to cell_clients_: the client's base per-subcarrier SNR at
  // each width (dB), precomputed from Tx power and the link budget.
  std::vector<double> cell_snr20_db_;
  std::vector<double> cell_snr40_db_;
  // Row-major AP -> client received power in mW (hidden interference).
  std::vector<double> rx_mw_;

  std::shared_ptr<const phy::RateTable> table20_;
  std::shared_ptr<const phy::RateTable> table40_;
};

}  // namespace acorn::sim
