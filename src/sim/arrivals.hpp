// Client arrival/departure process: Poisson arrivals with caller-supplied
// association durations. Drives the dynamic experiments (periodic channel
// re-allocation, the Fig. 9 / periodicity-T analysis).
#pragma once

#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace acorn::sim {

struct ArrivalEvent {
  double arrive_s = 0.0;
  double depart_s = 0.0;
  /// Which client slot of the topology this session occupies.
  int client_slot = 0;
};

struct ArrivalConfig {
  /// Mean arrivals per second across the WLAN.
  double rate_per_s = 1.0 / 120.0;
  /// Generation horizon.
  double horizon_s = 3600.0;
  /// Number of client slots to cycle sessions through.
  int num_client_slots = 1;
};

/// Sampler for one association duration (seconds); typically
/// trace::AssociationDurationModel::sample bound to an Rng.
using DurationSampler = std::function<double(util::Rng&)>;

/// Generate a session list sorted by arrival time.
std::vector<ArrivalEvent> generate_arrivals(const ArrivalConfig& config,
                                            const DurationSampler& durations,
                                            util::Rng& rng);

/// Number of sessions active at time `t_s`.
int active_sessions(const std::vector<ArrivalEvent>& sessions, double t_s);

}  // namespace acorn::sim
